(** Per-process virtual memory: a sparse page table plus a VMA list.

    Pages carry their protection so the hot path (instruction fetch, loads,
    stores) is a single hash lookup; VMAs carry the metadata CRIU's
    [mm.img] records — start, end, permissions, backing file and offset —
    exactly the fields DynaCut edits when it unmaps code pages or injects
    a library (paper §3.3). *)

type access = Read | Write | Exec

let access_to_string = function Read -> "read" | Write -> "write" | Exec -> "exec"

exception Fault of int64 * access
(** Address + attempted access; the machine turns this into SIGSEGV. *)

type vma = {
  va_start : int64;
  va_len : int;  (** bytes, page-multiple *)
  va_prot : Self.prot;
  va_file : (string * int) option;  (** backing file path + offset *)
  va_name : string;  (** e.g. "ngx:.text", "[stack]", "[anon]" *)
}

let vma_end v = Int64.add v.va_start (Int64.of_int v.va_len)

type page = {
  pg_data : bytes;
  mutable pg_prot : Self.prot;
  mutable pg_gen : int;
      (** write generation: bumped on every store into the page,
          including kernel pokes and hardware-level bit flips — the
          dirty-tracking signal the integrity scrubber uses to skip
          provably-unchanged pages without hashing them *)
}

type t = {
  pages : (int64, page) Hashtbl.t;  (** page index -> page *)
  mutable vmas : vma list;  (** sorted by start *)
  exec_dirty : (int64, unit) Hashtbl.t;
      (** page indexes of executable pages modified since the last drain —
          the precise invalidation signal the decoded-block code cache
          consumes: any store, poke, bit flip, reprotect or unmap that
          touches an executable page lands its index here, and the cache
          dispatcher evicts exactly the blocks overlapping these pages
          before running another cached block *)
}

let page_size = 4096
let page_size64 = 4096L
let page_index (addr : int64) = Int64.div addr page_size64
let page_base (addr : int64) = Int64.mul (page_index addr) page_size64
let page_offset (addr : int64) = Int64.to_int (Int64.rem addr page_size64)

let create () =
  { pages = Hashtbl.create 256; vmas = []; exec_dirty = Hashtbl.create 8 }

let mark_exec_dirty t idx = Hashtbl.replace t.exec_dirty idx ()
let exec_dirty_pending t = Hashtbl.length t.exec_dirty > 0

(** Return the dirtied executable page indexes and clear the set. *)
let take_exec_dirty t =
  let l = Hashtbl.fold (fun k () acc -> k :: acc) t.exec_dirty [] in
  Hashtbl.reset t.exec_dirty;
  l

let align_up n = (n + page_size - 1) / page_size * page_size

let overlaps a_start a_len b_start b_len =
  let a_end = Int64.add a_start (Int64.of_int a_len) in
  let b_end = Int64.add b_start (Int64.of_int b_len) in
  a_start < b_end && b_start < a_end

let find_vma t addr =
  List.find_opt (fun v -> addr >= v.va_start && addr < vma_end v) t.vmas

(** Map [len] bytes at [vaddr] (both page-aligned after rounding) with
    [prot]. Fails if the range overlaps an existing VMA. *)
let map t ~vaddr ~len ~prot ?(file = None) ~name () =
  if Int64.rem vaddr page_size64 <> 0L then
    invalid_arg (Printf.sprintf "Mem.map: unaligned vaddr 0x%Lx" vaddr);
  let len = align_up (max len 1) in
  if List.exists (fun v -> overlaps v.va_start v.va_len vaddr len) t.vmas then
    invalid_arg (Printf.sprintf "Mem.map: overlap at 0x%Lx+%d (%s)" vaddr len name);
  let v = { va_start = vaddr; va_len = len; va_prot = prot; va_file = file; va_name = name } in
  t.vmas <- List.sort (fun a b -> compare a.va_start b.va_start) (v :: t.vmas);
  let npages = len / page_size in
  for i = 0 to npages - 1 do
    let idx = Int64.add (page_index vaddr) (Int64.of_int i) in
    Hashtbl.replace t.pages idx
      { pg_data = Bytes.make page_size '\x00'; pg_prot = prot; pg_gen = 0 }
  done;
  v

(** Unmap every page in [vaddr, vaddr+len); VMAs fully inside the range are
    removed, partially covered VMAs are split. *)
let unmap t ~vaddr ~len =
  let len = align_up (max len 1) in
  let range_end = Int64.add vaddr (Int64.of_int len) in
  let keep, affected =
    List.partition (fun v -> not (overlaps v.va_start v.va_len vaddr len)) t.vmas
  in
  let fragments =
    List.concat_map
      (fun v ->
        let frags = ref [] in
        (* fragment before the hole *)
        if v.va_start < vaddr then
          frags :=
            { v with va_len = Int64.to_int (Int64.sub vaddr v.va_start) } :: !frags;
        (* fragment after the hole *)
        if vma_end v > range_end then
          frags :=
            {
              v with
              va_start = range_end;
              va_len = Int64.to_int (Int64.sub (vma_end v) range_end);
              va_file =
                (match v.va_file with
                | Some (f, off) ->
                    Some (f, off + Int64.to_int (Int64.sub range_end v.va_start))
                | None -> None);
            }
            :: !frags;
        !frags)
      affected
  in
  t.vmas <- List.sort (fun a b -> compare a.va_start b.va_start) (keep @ fragments);
  let npages = len / page_size in
  for i = 0 to npages - 1 do
    let idx = Int64.add (page_index vaddr) (Int64.of_int i) in
    (match Hashtbl.find_opt t.pages idx with
    | Some p when p.pg_prot.Self.p_x -> mark_exec_dirty t idx
    | _ -> ());
    Hashtbl.remove t.pages idx
  done

let protect t ~vaddr ~len ~prot =
  let len = align_up (max len 1) in
  let range_end = Int64.add vaddr (Int64.of_int len) in
  t.vmas <-
    List.concat_map
      (fun v ->
        if not (overlaps v.va_start v.va_len vaddr len) then [ v ]
        else begin
          (* split into up to three pieces; middle gets the new prot *)
          let pieces = ref [] in
          if v.va_start < vaddr then
            pieces := { v with va_len = Int64.to_int (Int64.sub vaddr v.va_start) } :: !pieces;
          let mid_start = max v.va_start vaddr in
          let mid_end = min (vma_end v) range_end in
          pieces :=
            {
              v with
              va_start = mid_start;
              va_len = Int64.to_int (Int64.sub mid_end mid_start);
              va_prot = prot;
              va_file =
                (match v.va_file with
                | Some (f, off) ->
                    Some (f, off + Int64.to_int (Int64.sub mid_start v.va_start))
                | None -> None);
            }
            :: !pieces;
          if vma_end v > range_end then
            pieces :=
              {
                v with
                va_start = range_end;
                va_len = Int64.to_int (Int64.sub (vma_end v) range_end);
                va_file =
                  (match v.va_file with
                  | Some (f, off) ->
                      Some (f, off + Int64.to_int (Int64.sub range_end v.va_start))
                  | None -> None);
              }
              :: !pieces;
          List.sort (fun a b -> compare a.va_start b.va_start) !pieces
        end)
      t.vmas;
  let npages = len / page_size in
  for i = 0 to npages - 1 do
    let idx = Int64.add (page_index vaddr) (Int64.of_int i) in
    match Hashtbl.find_opt t.pages idx with
    | Some p ->
        if p.pg_prot.Self.p_x || prot.Self.p_x then mark_exec_dirty t idx;
        p.pg_prot <- prot
    | None -> ()
  done

(* ---------- accesses ---------- *)

let get_page t addr access =
  match Hashtbl.find_opt t.pages (page_index addr) with
  | None -> raise (Fault (addr, access))
  | Some p ->
      let ok =
        match access with
        | Read -> p.pg_prot.Self.p_r
        | Write -> p.pg_prot.Self.p_w
        | Exec -> p.pg_prot.Self.p_x
      in
      if not ok then raise (Fault (addr, access));
      p

let read8 t addr =
  let p = get_page t addr Read in
  Char.code (Bytes.get p.pg_data (page_offset addr))

let fetch8 t addr =
  let p = get_page t addr Exec in
  Char.code (Bytes.get p.pg_data (page_offset addr))

let write8 t addr v =
  let p = get_page t addr Write in
  p.pg_gen <- p.pg_gen + 1;
  if p.pg_prot.Self.p_x then mark_exec_dirty t (page_index addr);
  Bytes.set p.pg_data (page_offset addr) (Char.chr (v land 0xff))

(** Raw write ignoring protections — used only by the loader and by
    checkpoint restore (kernel-side writes). *)
let poke8 t addr v =
  match Hashtbl.find_opt t.pages (page_index addr) with
  | None -> raise (Fault (addr, Write))
  | Some p ->
      p.pg_gen <- p.pg_gen + 1;
      if p.pg_prot.Self.p_x then mark_exec_dirty t (page_index addr);
      Bytes.set p.pg_data (page_offset addr) (Char.chr (v land 0xff))

let peek8 t addr =
  match Hashtbl.find_opt t.pages (page_index addr) with
  | None -> raise (Fault (addr, Read))
  | Some p -> Char.code (Bytes.get p.pg_data (page_offset addr))

let read64 t addr =
  (* fast path: within one page *)
  if page_offset addr <= page_size - 8 then (
    let p = get_page t addr Read in
    Bytes.get_int64_le p.pg_data (page_offset addr))
  else (
    let v = ref 0L in
    for i = 7 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8)
             (Int64.of_int (read8 t (Int64.add addr (Int64.of_int i))))
    done;
    !v)

let write64 t addr (v : int64) =
  if page_offset addr <= page_size - 8 then (
    let p = get_page t addr Write in
    p.pg_gen <- p.pg_gen + 1;
    if p.pg_prot.Self.p_x then mark_exec_dirty t (page_index addr);
    Bytes.set_int64_le p.pg_data (page_offset addr) v)
  else
    for i = 0 to 7 do
      write8 t (Int64.add addr (Int64.of_int i))
        (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xffL))
    done

let read_bytes t addr len =
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.set b i (Char.chr (read8 t (Int64.add addr (Int64.of_int i))))
  done;
  b

let write_bytes t addr (b : bytes) =
  Bytes.iteri (fun i c -> write8 t (Int64.add addr (Int64.of_int i)) (Char.code c)) b

let poke_bytes t addr (b : bytes) =
  Bytes.iteri (fun i c -> poke8 t (Int64.add addr (Int64.of_int i)) (Char.code c)) b

let peek_bytes t addr len =
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.set b i (Char.chr (peek8 t (Int64.add addr (Int64.of_int i))))
  done;
  b

(** Read a NUL-terminated string (bounded at 1 MiB to catch runaways). *)
let read_cstring t addr =
  let b = Buffer.create 32 in
  let rec go i =
    if i > 1_048_576 then failwith "read_cstring: unterminated";
    let c = read8 t (Int64.add addr (Int64.of_int i)) in
    if c = 0 then Buffer.contents b
    else begin
      Buffer.add_char b (Char.chr c);
      go (i + 1)
    end
  in
  go 0

(** Deep copy (fork, checkpoint). *)
let copy t =
  let pages = Hashtbl.create (Hashtbl.length t.pages) in
  Hashtbl.iter
    (fun k p ->
      Hashtbl.replace pages k
        { pg_data = Bytes.copy p.pg_data; pg_prot = p.pg_prot; pg_gen = p.pg_gen })
    t.pages;
  (* a fresh address space has no cached blocks, so it starts clean *)
  { pages; vmas = t.vmas; exec_dirty = Hashtbl.create 8 }

(** Populated pages of a VMA, as (vaddr, bytes) in address order. *)
let pages_of_vma t (v : vma) =
  let first = page_index v.va_start in
  let n = v.va_len / page_size in
  List.filter_map
    (fun i ->
      let idx = Int64.add first (Int64.of_int i) in
      match Hashtbl.find_opt t.pages idx with
      | Some p -> Some (Int64.mul idx page_size64, p.pg_data)
      | None -> None)
    (List.init n Fun.id)

let total_mapped_bytes t = Hashtbl.length t.pages * page_size

(* ---------- page integrity primitives ---------- *)

(* FNV-1a over raw bytes — same function family as the image seal, but
   local: Mem sits below the criu layer. *)
let digest_bytes (b : bytes) : int64 =
  let h = ref 0xCBF29CE484222325L in
  Bytes.iter
    (fun ch -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code ch))) 0x100000001B3L)
    b;
  !h

(** Digest of the resident page containing [addr]; [None] when the page
    is not populated. *)
let page_digest t addr =
  Option.map
    (fun p -> digest_bytes p.pg_data)
    (Hashtbl.find_opt t.pages (page_index addr))

(** Write generation of the resident page containing [addr]. *)
let page_gen t addr =
  Option.map (fun p -> p.pg_gen) (Hashtbl.find_opt t.pages (page_index addr))

(** Flip one bit in a resident page, ignoring protections — the seeded
    silent-corruption injector ([Fault.Bitflip]). Bumps the write
    generation: the generation models hardware-level modification
    telemetry (a dirty bit), which a bit flip trips even though every
    software write path was bypassed. Raises {!Fault} when the page is
    not populated. *)
let flip_bit t ~addr ~bit =
  if bit < 0 || bit > 7 then invalid_arg "Mem.flip_bit: bit outside 0..7";
  match Hashtbl.find_opt t.pages (page_index addr) with
  | None -> raise (Fault (addr, Write))
  | Some p ->
      let off = page_offset addr in
      p.pg_gen <- p.pg_gen + 1;
      if p.pg_prot.Self.p_x then mark_exec_dirty t (page_index addr);
      Bytes.set p.pg_data off
        (Char.chr (Char.code (Bytes.get p.pg_data off) lxor (1 lsl bit)))

(** Find a free, page-aligned gap of [len] bytes at or after [hint]. *)
let find_free t ~hint ~len =
  let len = align_up (max len 1) in
  let rec go addr =
    if List.exists (fun v -> overlaps v.va_start v.va_len addr len) t.vmas then
      let blocker =
        List.find (fun v -> overlaps v.va_start v.va_len addr len) t.vmas
      in
      go (vma_end blocker)
    else addr
  in
  go (page_base (Int64.add hint (Int64.of_int (page_size - 1))))
