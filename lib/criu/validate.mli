(** Integrity checking for checkpoint images: structural invariants plus
    the checksum seal around the tmpfs serialization. Any violation
    raises {!Validate_error} — never a garbage restore. *)

exception Validate_error of string

val check : Images.t -> unit
(** Enforce the structural invariants: page-aligned, non-overlapping
    VMAs; pagemap runs inside both the pages buffer and the VMA set;
    [rip] inside a mapped executable VMA; sane sigactions and fd table. *)

val checksum : string -> int64
(** FNV-1a over the payload. *)

val seal : string -> string
(** Prefix an encoded image with magic + length + checksum. *)

val unseal : string -> string
(** Verify and strip the seal; raises {!Validate_error} on truncation or
    corruption. The message names the failure kind (truncated /
    bad-magic / checksum-mismatch) and the byte offset where the reader
    gave up. *)

type tear_kind =
  | Truncated  (** blob ends mid-header or mid-payload *)
  | Bad_magic  (** bytes at the frame boundary are not a seal header *)
  | Checksum_mismatch  (** frame intact in shape, payload corrupted *)

type tear = {
  t_offset : int;  (** byte offset of the start of the torn frame *)
  t_kind : tear_kind;
}

val tear_kind_to_string : tear_kind -> string
val pp_tear : Format.formatter -> tear -> unit

val unseal_frames : string -> string list * tear option
(** Split a concatenation of sealed frames (the journal file layout)
    into the payloads of the longest valid prefix; [Some tear] reports a
    torn tail — truncation mid-frame, bad magic, or a checksum mismatch
    — located at the byte offset where the torn frame starts. Never
    raises: a crash can tear the last frame, and the prefix is exactly
    what recovery needs. *)

val seal_at : site:string -> string -> string
(** [seal], then pass the sealed frame through [Fault.corruptible site]:
    a [Fault.Corrupt] fault armed at [site] mangles the frame on the way
    to storage (seeded bit-flip or truncation), exercising the checksum
    detection end-to-end. Identity sealing otherwise. *)

val encode_sealed : Images.t -> string
(** [seal (Images.encode img)]. *)

val decode_sealed : string -> Images.t
(** [unseal] + decode + [check]; decode failures are reported as
    {!Validate_error}. *)
