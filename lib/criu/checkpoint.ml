(** Checkpoint: dump a (frozen) process into {!Images}.

    Mirrors the paper's CRIU modification (§3.3): vanilla CRIU does not
    dump file-backed executable pages — they are reconstructed from the
    binary on restore, which would silently *undo* any [int3] patches.
    DynaCut's added option ([`Dynacut] mode here) dumps private+executable
    pages too, so rewritten code survives the restore. *)

type mode =
  | Vanilla  (** skip file-backed executable pages (restored from file) *)
  | Dynacut  (** dump PROT_EXEC | FILE_PRIVATE pages as well *)

let page_size = Mem.page_size

let dump_vma_pages ~mode (v : Mem.vma) =
  match mode with
  | Dynacut -> true
  | Vanilla -> not (v.Mem.va_file <> None && v.Mem.va_prot.Self.p_x)

(** Dump one process. The caller should have frozen it
    ({!Machine.freeze}); dumping a running process would be racy on a
    real system — here we just require quiescence by convention. *)
let dump (m : Machine.t) ~(pid : int) ?(mode = Dynacut) () : Images.t =
  Fault.site "criu.checkpoint";
  let p = Machine.proc_exn m pid in
  let mem = p.Proc.mem in
  let mm =
    List.map
      (fun (v : Mem.vma) ->
        {
          Images.vi_start = v.Mem.va_start;
          vi_len = v.Mem.va_len;
          vi_prot = Self.prot_to_int v.Mem.va_prot;
          vi_file = v.Mem.va_file;
          vi_name = v.Mem.va_name;
        })
      mem.Mem.vmas
  in
  (* pagemap + pages: coalesce consecutive populated pages of dumpable VMAs *)
  let buf = Buffer.create 65536 in
  let pagemap = ref [] in
  let flush_run run_start run_pages =
    match run_start with
    | None -> ()
    | Some start ->
        pagemap :=
          {
            Images.pm_vaddr = start;
            pm_npages = run_pages;
            pm_off = Buffer.length buf - (run_pages * page_size);
          }
          :: !pagemap
  in
  List.iter
    (fun (v : Mem.vma) ->
      if dump_vma_pages ~mode v then begin
        let pages = Mem.pages_of_vma mem v in
        let run_start = ref None and run_pages = ref 0 and expect = ref 0L in
        List.iter
          (fun (vaddr, data) ->
            if !run_start <> None && vaddr = !expect then begin
              Buffer.add_bytes buf data;
              incr run_pages;
              expect := Int64.add vaddr (Int64.of_int page_size)
            end
            else begin
              flush_run !run_start !run_pages;
              run_start := Some vaddr;
              run_pages := 1;
              Buffer.add_bytes buf data;
              expect := Int64.add vaddr (Int64.of_int page_size)
            end)
          pages;
        flush_run !run_start !run_pages
      end)
    mem.Mem.vmas;
  let regs = p.Proc.regs in
  let core =
    {
      Images.c_pid = p.Proc.pid;
      c_parent = p.Proc.parent;
      c_comm = p.Proc.comm;
      c_exe = p.Proc.exe_path;
      c_regs =
        {
          Images.r_gpr = Array.copy regs.Proc.gpr;
          r_rip = regs.Proc.rip;
          r_flags = Proc.pack_flags regs;
        };
      c_sigactions =
        List.filter_map
          (fun signum ->
            match p.Proc.sigactions.(signum) with
            | Some { Proc.sa_handler; sa_restorer } ->
                Some { Images.sg_signum = signum; sg_handler = sa_handler; sg_restorer = sa_restorer }
            | None -> None)
          (List.init Abi.nsig Fun.id);
      c_state = Proc.state_to_string p.Proc.state;
      c_seccomp = p.Proc.seccomp;
    }
  in
  let f_fds =
    Hashtbl.fold
      (fun fd k acc ->
        let ki =
          match k with
          | Proc.Fd_stdin -> Images.Fi_stdin
          | Proc.Fd_stdout -> Images.Fi_stdout
          | Proc.Fd_stderr -> Images.Fi_stderr
          | Proc.Fd_file { path; pos } -> Images.Fi_file (path, pos)
          | Proc.Fd_listener port -> Images.Fi_listener port
          | Proc.Fd_sock cid -> Images.Fi_sock cid
        in
        (fd, ki) :: acc)
      p.Proc.fds []
    |> List.sort compare
  in
  let tcp =
    List.filter_map
      (fun (_, k) ->
        match k with
        | Images.Fi_sock cid -> (
            match Net.find_conn m.Machine.net cid with
            | Some c -> Some (Net.snapshot_conn c)
            | None -> None)
        | _ -> None)
      f_fds
  in
  {
    Images.core;
    mm;
    pagemap = List.rev !pagemap;
    pages = Buffer.to_bytes buf;
    files = { Images.f_fds; f_next_fd = p.Proc.next_fd };
    tcp;
    mmap_hint = p.Proc.mmap_hint;
  }

(** Dump a process and all its live descendants (multi-process apps such
    as the Nginx-style master/worker server). *)
let dump_tree (m : Machine.t) ~(root : int) ?(mode = Dynacut) () : Images.t list =
  let rec descendants pid =
    let kids =
      List.filter (fun (q : Proc.t) -> q.Proc.parent = pid && Proc.is_live q) (Machine.all_procs m)
    in
    pid :: List.concat_map (fun (q : Proc.t) -> descendants q.Proc.pid) kids
  in
  List.map (fun pid -> dump m ~pid ~mode ()) (descendants root)

(** Serialize into the machine's tmpfs (paper §3.3 checkpoints into a
    tmpfs to keep rewrite latency off the disk). The blob carries
    {!Validate}'s checksum seal so truncation or corruption is caught at
    load. Returns the file path. *)
let save_to_tmpfs (m : Machine.t) ~(dir : string) (img : Images.t) : string =
  Fault.site "criu.save";
  let path = Printf.sprintf "%s/dump-%d.img" dir img.Images.core.Images.c_pid in
  let blob = Obs.with_span "crit" (fun () -> Validate.encode_sealed img) in
  (* corrupt-mode chaos faults mangle the working image here; the
     pristine rollback anchor is written elsewhere, outside this site *)
  Vfs.add m.Machine.fs path (Fault.corruptible "criu.save" blob);
  path
