(** Restore: rebuild a live process from {!Images}, including TCP repair
    so established connections survive (§3.3, Figure 8). *)

exception Restore_error of string

val file_bytes : Machine.t -> path:string -> off:int -> len:int -> bytes
(** Bytes of a SELF binary's image range, for vanilla-CRIU fault-in. *)

val image_page_bytes : Machine.t -> Images.t -> vaddr:int64 -> bytes option
(** Read back the page containing [vaddr] from a decoded image without
    restoring it: dumped pages from the pagemap, non-dumped file-backed
    ranges from the backing binary — the same composition {!restore}
    materializes. [None] outside every image VMA or for a non-dumped
    anonymous page. The integrity scrubber's per-page repair source. *)

val restore : Machine.t -> Images.t -> Proc.t
(** Re-create the process: address space, registers, sigactions, fds,
    repaired connections, re-registered listeners. Raises
    {!Restore_error} if the pid is still alive. *)

val load_from_tmpfs : Machine.t -> path:string -> Images.t
(** Load, unseal, and {!Validate.check} an image blob; raises
    {!Validate.Validate_error} on truncation/corruption and
    {!Restore_error} if the file is missing. *)

val restore_from_tmpfs : Machine.t -> path:string -> Proc.t

val respawn : Machine.t -> path:string -> Proc.t
(** Re-create a {e dead} pid from a tmpfs image (fault site
    [restore.respawn]) — the supervisor's crash-loop respawn. Restoring
    from a working (rewritten) image resumes with the cut applied;
    restoring from a pristine image resumes the original program. *)
