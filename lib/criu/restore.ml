(** Restore: rebuild a live process from {!Images}.

    Re-creates the address space from [mm] + [pagemap] + [pages], pulls
    any non-dumped file-backed executable ranges back from the binary
    (vanilla-CRIU behaviour), restores registers, signal dispositions and
    the fd table, and performs TCP repair so established connections
    carry on — the property Figure 8 depends on. *)

exception Restore_error of string

let page_size = Mem.page_size

(** Fetch the file-backed bytes of a VMA range from a SELF binary in the
    machine filesystem. *)
let file_bytes (m : Machine.t) ~path ~off ~len : bytes =
  match Vfs.find_self m.Machine.fs path with
  | None -> raise (Restore_error ("backing file missing: " ^ path))
  | Some self ->
      let out = Bytes.make len '\x00' in
      List.iter
        (fun (s : Self.section) ->
          let s_len = Bytes.length s.Self.sec_data in
          (* overlap of [off, off+len) with [sec_off, sec_off+s_len) *)
          let lo = max off s.Self.sec_off in
          let hi = min (off + len) (s.Self.sec_off + s_len) in
          if lo < hi then
            Bytes.blit s.Self.sec_data (lo - s.Self.sec_off) out (lo - off) (hi - lo))
        self.Self.sections;
      out

(** Read back one page of a decoded image without restoring it: dumped
    pages come from the pagemap, non-dumped file-backed ranges from the
    backing binary (the same composition {!restore} materializes).
    [None] when the page lies outside every VMA of the image, or inside
    an anonymous VMA whose page was not dumped. This is the integrity
    scrubber's repair source: the expected bytes of a resident page, per
    page, straight from the sealed checkpoint image. *)
let image_page_bytes (m : Machine.t) (img : Images.t) ~(vaddr : int64) :
    bytes option =
  let vaddr = Int64.mul (Int64.div vaddr (Int64.of_int page_size)) (Int64.of_int page_size) in
  match Images.read_mem img vaddr page_size with
  | b -> Some b
  | exception Not_found -> (
      match Images.find_vma img vaddr with
      | None -> None
      | Some v -> (
          match v.Images.vi_file with
          | None -> None
          | Some (path, off) ->
              let delta = Int64.to_int (Int64.sub vaddr v.Images.vi_start) in
              Some (file_bytes m ~path ~off:(off + delta) ~len:page_size)))

let restore (m : Machine.t) (img : Images.t) : Proc.t =
  Fault.site "restore.process";
  let core = img.Images.core in
  (match Machine.proc m core.Images.c_pid with
  | Some p when Proc.is_live p ->
      raise (Restore_error (Printf.sprintf "pid %d still alive" core.Images.c_pid))
  | _ -> ());
  let mem = Mem.create () in
  (* VMAs *)
  List.iter
    (fun (v : Images.vma_img) ->
      let (_ : Mem.vma) =
        Mem.map mem ~vaddr:v.Images.vi_start ~len:v.Images.vi_len
          ~prot:(Self.prot_of_int v.Images.vi_prot)
          ~file:v.Images.vi_file ~name:v.Images.vi_name ()
      in
      ())
    img.Images.mm;
  (* dumped pages *)
  List.iter
    (fun (pm : Images.pagemap_entry) ->
      let len = pm.Images.pm_npages * page_size in
      let data = Bytes.sub img.Images.pages pm.Images.pm_off len in
      Mem.poke_bytes mem pm.Images.pm_vaddr data)
    img.Images.pagemap;
  (* vanilla-CRIU gaps: file-backed VMAs with no dumped pages are faulted
     in from the binary *)
  let populated vaddr =
    List.exists
      (fun (pm : Images.pagemap_entry) ->
        vaddr >= pm.Images.pm_vaddr
        && vaddr < Int64.add pm.Images.pm_vaddr (Int64.of_int (pm.Images.pm_npages * page_size)))
      img.Images.pagemap
  in
  List.iter
    (fun (v : Images.vma_img) ->
      match v.Images.vi_file with
      | None -> ()
      | Some (path, off) ->
          let npages = v.Images.vi_len / page_size in
          for k = 0 to npages - 1 do
            let vaddr = Int64.add v.Images.vi_start (Int64.of_int (k * page_size)) in
            if not (populated vaddr) then
              let data =
                file_bytes m ~path ~off:(off + (k * page_size)) ~len:page_size
              in
              Mem.poke_bytes mem vaddr data
          done)
    img.Images.mm;
  (* the process object *)
  let p =
    Proc.create ~pid:core.Images.c_pid ~parent:core.Images.c_parent
      ~comm:core.Images.c_comm ~exe_path:core.Images.c_exe ~mem
  in
  Array.blit core.Images.c_regs.Images.r_gpr 0 p.Proc.regs.Proc.gpr 0 16;
  p.Proc.regs.Proc.rip <- core.Images.c_regs.Images.r_rip;
  Proc.unpack_flags p.Proc.regs core.Images.c_regs.Images.r_flags;
  List.iter
    (fun (s : Images.sigaction_img) ->
      p.Proc.sigactions.(s.Images.sg_signum) <-
        Some { Proc.sa_handler = s.Images.sg_handler; sa_restorer = s.Images.sg_restorer })
    core.Images.c_sigactions;
  Hashtbl.reset p.Proc.fds;
  List.iter
    (fun (fd, k) ->
      let kind =
        match k with
        | Images.Fi_stdin -> Proc.Fd_stdin
        | Images.Fi_stdout -> Proc.Fd_stdout
        | Images.Fi_stderr -> Proc.Fd_stderr
        | Images.Fi_file (path, pos) -> Proc.Fd_file { path; pos }
        | Images.Fi_listener port -> Proc.Fd_listener port
        | Images.Fi_sock cid -> Proc.Fd_sock cid
      in
      Hashtbl.replace p.Proc.fds fd kind)
    img.Images.files.Images.f_fds;
  p.Proc.next_fd <- img.Images.files.Images.f_next_fd;
  p.Proc.mmap_hint <- img.Images.mmap_hint;
  p.Proc.seccomp <- core.Images.c_seccomp;
  (* TCP repair *)
  Obs.with_span "tcp_repair" (fun () ->
      List.iter
        (fun (s : Net.conn_snapshot) ->
          Fault.site "restore.tcp_repair";
          ignore (Net.repair_conn m.Machine.net s))
        img.Images.tcp);
  p.Proc.state <- Proc.Runnable;
  Machine.install m p;
  (* re-create listeners for listening fds — after install, so the owner
     (tree root) resolves through the machine's process table even when
     the restored pid is the tree root itself *)
  List.iter
    (fun (_, k) ->
      match k with
      | Images.Fi_listener port when port >= 0 ->
          ignore
            (Net.listen
               ~owner:(Machine.tree_root m p.Proc.pid)
               m.Machine.net port)
      | _ -> ())
    img.Images.files.Images.f_fds;
  p

(** Load and verify a sealed image from the machine tmpfs. Raises
    {!Validate.Validate_error} if the file is truncated, corrupted, or
    structurally inconsistent. *)
let load_from_tmpfs (m : Machine.t) ~(path : string) : Images.t =
  Fault.site "criu.load";
  match Vfs.find m.Machine.fs path with
  | None -> raise (Restore_error ("no image at " ^ path))
  | Some blob -> Obs.with_span "crit" (fun () -> Validate.decode_sealed blob)

(** Restore from a serialized image in the machine tmpfs. *)
let restore_from_tmpfs (m : Machine.t) ~(path : string) : Proc.t =
  restore m (load_from_tmpfs m ~path)

(** Re-create a dead process from a tmpfs image — the supervisor's
    crash-loop respawn. The pid must be dead (a live pid is refused by
    {!restore}); the restored process takes over the dead one's slot and
    resumes from the image's saved state, cut edits included when the
    image is a working (rewritten) one. *)
let respawn (m : Machine.t) ~(path : string) : Proc.t =
  Fault.site "restore.respawn";
  let p = restore m (load_from_tmpfs m ~path) in
  p.Proc.frozen <- false;
  p
