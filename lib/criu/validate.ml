(** Integrity checking for checkpoint images.

    The rewriter edits static images; a bug there (or a truncated tmpfs
    file) would otherwise surface only as a garbage process after
    restore — the exact availability loss the pipeline exists to avoid.
    [check] enforces the structural invariants every well-formed
    {!Images.t} satisfies, and [seal]/[unseal] wrap the binary encoding
    with a length + FNV-1a checksum header so corruption is caught at
    load time with a clean {!Validate_error}. *)

exception Validate_error of string

let page_size = Images.page_size
let page_size64 = Int64.of_int page_size

let fail fmt = Printf.ksprintf (fun m -> raise (Validate_error m)) fmt

let vma_end (v : Images.vma_img) = Int64.add v.Images.vi_start (Int64.of_int v.Images.vi_len)

let check_mm (img : Images.t) =
  List.iter
    (fun (v : Images.vma_img) ->
      if Int64.rem v.Images.vi_start page_size64 <> 0L then
        fail "vma %s at 0x%Lx not page-aligned" v.Images.vi_name v.Images.vi_start;
      if v.Images.vi_len <= 0 || v.Images.vi_len mod page_size <> 0 then
        fail "vma %s at 0x%Lx has bad length %d" v.Images.vi_name v.Images.vi_start
          v.Images.vi_len)
    img.Images.mm;
  let sorted =
    List.sort (fun a b -> compare a.Images.vi_start b.Images.vi_start) img.Images.mm
  in
  let rec overlap = function
    | a :: (b :: _ as rest) ->
        if vma_end a > b.Images.vi_start then
          fail "vmas overlap: %s [0x%Lx,0x%Lx) and %s at 0x%Lx" a.Images.vi_name
            a.Images.vi_start (vma_end a) b.Images.vi_name b.Images.vi_start;
        overlap rest
    | _ -> ()
  in
  overlap sorted

let check_pagemap (img : Images.t) =
  let total = Bytes.length img.Images.pages in
  List.iter
    (fun (pm : Images.pagemap_entry) ->
      if pm.Images.pm_npages < 1 then fail "pagemap run at 0x%Lx empty" pm.Images.pm_vaddr;
      if Int64.rem pm.Images.pm_vaddr page_size64 <> 0L then
        fail "pagemap run at 0x%Lx not page-aligned" pm.Images.pm_vaddr;
      if pm.Images.pm_off < 0 || pm.Images.pm_off + (pm.Images.pm_npages * page_size) > total
      then
        fail "pagemap run at 0x%Lx spills out of pages buffer (off %d, %d pages, buf %d)"
          pm.Images.pm_vaddr pm.Images.pm_off pm.Images.pm_npages total;
      (* every page of the run must be inside a mapped VMA *)
      for k = 0 to pm.Images.pm_npages - 1 do
        let pa = Int64.add pm.Images.pm_vaddr (Int64.of_int (k * page_size)) in
        if Images.find_vma img pa = None then
          fail "dumped page 0x%Lx not covered by any vma" pa
      done)
    img.Images.pagemap;
  (* runs must not overlap in virtual address space *)
  let sorted =
    List.sort
      (fun (a : Images.pagemap_entry) b -> compare a.Images.pm_vaddr b.Images.pm_vaddr)
      img.Images.pagemap
  in
  let rec overlap = function
    | (a : Images.pagemap_entry) :: (b :: _ as rest) ->
        let a_end = Int64.add a.Images.pm_vaddr (Int64.of_int (a.Images.pm_npages * page_size)) in
        if a_end > b.Images.pm_vaddr then
          fail "pagemap runs overlap at 0x%Lx" b.Images.pm_vaddr;
        overlap rest
    | _ -> ()
  in
  overlap sorted

let check_core (img : Images.t) =
  let rip = img.Images.core.Images.c_regs.Images.r_rip in
  (match Images.find_vma img rip with
  | None -> fail "rip 0x%Lx not inside any mapped vma" rip
  | Some v ->
      if not (Self.prot_of_int v.Images.vi_prot).Self.p_x then
        fail "rip 0x%Lx inside non-executable vma %s" rip v.Images.vi_name);
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (s : Images.sigaction_img) ->
      if s.Images.sg_signum < 1 || s.Images.sg_signum >= Abi.nsig then
        fail "sigaction for out-of-range signal %d" s.Images.sg_signum;
      if Hashtbl.mem seen s.Images.sg_signum then
        fail "duplicate sigaction for signal %d" s.Images.sg_signum;
      Hashtbl.add seen s.Images.sg_signum ())
    img.Images.core.Images.c_sigactions

let check_files (img : Images.t) =
  let f = img.Images.files in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (fd, k) ->
      if fd < 0 then fail "negative fd %d" fd;
      if Hashtbl.mem seen fd then fail "duplicate fd %d" fd;
      Hashtbl.add seen fd ();
      if fd >= f.Images.f_next_fd then
        fail "fd %d >= next_fd %d" fd f.Images.f_next_fd;
      match k with
      | Images.Fi_listener port when port < -1 -> fail "fd %d: bad listener port %d" fd port
      | Images.Fi_sock cid when cid < 0 -> fail "fd %d: negative connection id %d" fd cid
      | Images.Fi_file (_, pos) when pos < 0 -> fail "fd %d: negative file position %d" fd pos
      | _ -> ())
    f.Images.f_fds

(** Check all structural invariants of [img]; raises {!Validate_error}
    naming the first violation. *)
let check (img : Images.t) : unit =
  check_mm img;
  check_pagemap img;
  check_core img;
  check_files img

(* ---------- checksum sealing ---------- *)

(* header: magic (5) + u64 payload length + u64 FNV-1a checksum *)
let seal_magic = "DCCK\x01"
let header_size = String.length seal_magic + 16

let checksum (s : string) : int64 =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun ch -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code ch))) 0x100000001B3L)
    s;
  !h

(** Wrap an encoded image with the checksum header. *)
let seal (payload : string) : string =
  let open Bytesx.W in
  let b = create ~size:(String.length payload + header_size) () in
  string b seal_magic;
  int_as_u64 b (String.length payload);
  u64 b (checksum payload);
  string b payload;
  contents b

(* how a seal fails: the three distinguishable damage classes, each
   located by the byte offset where the reader gave up *)
type tear_kind = Truncated | Bad_magic | Checksum_mismatch

let tear_kind_to_string = function
  | Truncated -> "truncated"
  | Bad_magic -> "bad-magic"
  | Checksum_mismatch -> "checksum-mismatch"

type tear = { t_offset : int; t_kind : tear_kind }

let pp_tear fmt t =
  Format.fprintf fmt "%s at byte %d" (tear_kind_to_string t.t_kind) t.t_offset

(** Strip and verify the checksum header. Raises {!Validate_error}
    naming the failure kind (truncated / bad-magic / checksum-mismatch)
    and the byte offset where the reader gave up. *)
let unseal (blob : string) : string =
  if String.length blob < header_size then
    fail "image truncated at byte %d: seal header needs %d bytes"
      (String.length blob) header_size;
  if String.sub blob 0 (String.length seal_magic) <> seal_magic then
    fail "image bad-magic at byte 0: no checksum header";
  let open Bytesx.R in
  let r = of_string blob in
  let (_ : string) = take r (String.length seal_magic) in
  let len = int_of_u64 r in
  let sum = u64 r in
  if len < 0 || len > remaining r then
    fail "image truncated at byte %d: header says %d payload bytes, have %d"
      (String.length blob) len (remaining r);
  let payload = take r len in
  if checksum payload <> sum then
    fail "image checksum-mismatch at byte %d (0x%Lx, expected 0x%Lx)"
      header_size (checksum payload) sum;
  payload

(** A journal file is a plain concatenation of sealed frames — each one
    self-delimiting thanks to the length in the seal header. Split the
    valid prefix into payloads; a torn tail (truncated mid-frame, bad
    magic, or checksum mismatch) comes back as [Some tear] locating the
    start of the frame that failed and how. A torn tail is expected
    after a crash: the caller keeps the prefix. *)
let unseal_frames (blob : string) : string list * tear option =
  let magic_len = String.length seal_magic in
  let total = String.length blob in
  let tear off kind = Some { t_offset = off; t_kind = kind } in
  let rec go acc off =
    if off >= total then (List.rev acc, None)
    else if total - off < header_size then (List.rev acc, tear off Truncated)
    else if String.sub blob off magic_len <> seal_magic then
      (List.rev acc, tear off Bad_magic)
    else
      let open Bytesx.R in
      let r = of_string (String.sub blob off (total - off)) in
      let (_ : string) = take r magic_len in
      let len = int_of_u64 r in
      let sum = u64 r in
      if len < 0 || len > remaining r then (List.rev acc, tear off Truncated)
      else
        let payload = take r len in
        if checksum payload <> sum then
          (List.rev acc, tear off Checksum_mismatch)
        else go (payload :: acc) (off + header_size + len)
  in
  go [] 0

(** Seal [payload] for writing at fault site [site]: an armed
    [Fault.Corrupt] fault mangles the sealed frame on the way out (a
    seeded bit-flip or truncation, so {!unseal}/{!unseal_frames} must
    catch it at read time); the write-blocking modes (fail, kill,
    enospc, eio) were already evaluated by the site's [Fault.site] call.
    Every storage write in [Journal] goes through here. *)
let seal_at ~(site : string) (payload : string) : string =
  Fault.corruptible site (seal payload)

(** [seal (Images.encode img)]. *)
let encode_sealed (img : Images.t) : string = seal (Images.encode img)

(** Unseal, decode, and [check] — the only safe way to load an image
    from the tmpfs. Decode errors surface as {!Validate_error} too. *)
let decode_sealed (blob : string) : Images.t =
  let payload = unseal blob in
  let img =
    try Images.decode payload with
    | Images.Format_error e -> fail "image decode failed: %s" e
    | Bytesx.Truncated e -> fail "image decode truncated: %s" e
  in
  check img;
  img
