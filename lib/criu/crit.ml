(** CRIT — the CRiu Image Tool (paper §3.3).

    Decodes binary process images into a human-readable text form
    (s-expressions here, JSON in the original) and encodes edited text
    back into binary images. DynaCut's rewriter uses the typed
    {!Images.t} API directly, but the CLI exposes this codec for manual
    inspection and surgery, like the original [crit decode/encode]. *)

open Sexpr

let of_prot p = Atom (Self.prot_to_string (Self.prot_of_int p))

let to_prot = function
  | Atom s when String.length s = 3 ->
      Self.prot_to_int
        {
          Self.p_r = s.[0] = 'r';
          p_w = s.[1] = 'w';
          p_x = s.[2] = 'x';
        }
  | _ -> raise (Parse_error "bad prot")

let hex_bytes (b : bytes) = Atom (Bytesx.hex_of_string (Bytes.to_string b))

let unhex_bytes = function
  | Atom s ->
      if String.length s mod 2 <> 0 then raise (Parse_error "odd hex length");
      Bytes.init (String.length s / 2) (fun i ->
          Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))
  | List _ -> raise (Parse_error "expected hex atom")

let sexp_of_core (c : Images.core) =
  List
    [
      Atom "core";
      field "pid" (int c.Images.c_pid);
      field "parent" (int c.Images.c_parent);
      field "comm" (Atom c.Images.c_comm);
      field "exe" (Atom c.Images.c_exe);
      field "rip" (hex64 c.Images.c_regs.Images.r_rip);
      field "flags" (int c.Images.c_regs.Images.r_flags);
      field "gpr" (List (Array.to_list (Array.map hex64 c.Images.c_regs.Images.r_gpr)));
      field "sigactions"
        (List
           (List.map
              (fun (s : Images.sigaction_img) ->
                List
                  [
                    int s.Images.sg_signum;
                    hex64 s.Images.sg_handler;
                    hex64 s.Images.sg_restorer;
                  ])
              c.Images.c_sigactions));
      field "state" (Atom c.Images.c_state);
      field "seccomp"
        (match c.Images.c_seccomp with
        | None -> Atom "none"
        | Some denied -> List (List.map int denied));
    ]

let core_of_sexp sx : Images.core =
  let get name = match get_field name sx with Some v -> v | None -> raise (Parse_error ("core: missing " ^ name)) in
  let gpr =
    match get "gpr" with
    | List l -> Array.of_list (List.map as_i64 l)
    | Atom _ -> raise (Parse_error "gpr")
  in
  {
    Images.c_pid = as_int (get "pid");
    c_parent = as_int (get "parent");
    c_comm = as_atom (get "comm");
    c_exe = as_atom (get "exe");
    c_regs = { Images.r_gpr = gpr; r_rip = as_i64 (get "rip"); r_flags = as_int (get "flags") };
    c_sigactions =
      (match get "sigactions" with
      | List l ->
          List.map
            (function
              | List [ sg; h; r ] ->
                  { Images.sg_signum = as_int sg; sg_handler = as_i64 h; sg_restorer = as_i64 r }
              | _ -> raise (Parse_error "sigaction"))
            l
      | Atom _ -> raise (Parse_error "sigactions"));
    c_state = as_atom (get "state");
    c_seccomp =
      (match get_field "seccomp" sx with
      | None | Some (Atom "none") -> None
      | Some (List l) -> Some (List.map as_int l)
      | Some (Atom _) -> raise (Parse_error "seccomp"));
  }

let sexp_of_vma (v : Images.vma_img) =
  List
    ([
       hex64 v.Images.vi_start;
       int v.Images.vi_len;
       of_prot v.Images.vi_prot;
       Atom v.Images.vi_name;
     ]
    @
    match v.Images.vi_file with
    | Some (f, off) -> [ Atom f; int off ]
    | None -> [])

let vma_of_sexp = function
  | List (start :: len :: prot :: name :: rest) ->
      {
        Images.vi_start = as_i64 start;
        vi_len = as_int len;
        vi_prot = to_prot prot;
        vi_name = as_atom name;
        vi_file =
          (match rest with
          | [ f; off ] -> Some (as_atom f, as_int off)
          | [] -> None
          | _ -> raise (Parse_error "vma file"));
      }
  | _ -> raise (Parse_error "vma")

let to_sexp (t : Images.t) : Sexpr.t =
  List
    [
      Atom "criu-image";
      field "core" (sexp_of_core t.Images.core);
      field "mm" (List (List.map sexp_of_vma t.Images.mm));
      field "pagemap"
        (List
           (List.map
              (fun (pm : Images.pagemap_entry) ->
                List [ hex64 pm.Images.pm_vaddr; int pm.Images.pm_npages; int pm.Images.pm_off ])
              t.Images.pagemap));
      field "pages" (hex_bytes t.Images.pages);
      field "files"
        (List
           (List.map
              (fun (fd, k) ->
                let kind =
                  match k with
                  | Images.Fi_stdin -> [ Atom "stdin" ]
                  | Images.Fi_stdout -> [ Atom "stdout" ]
                  | Images.Fi_stderr -> [ Atom "stderr" ]
                  | Images.Fi_file (p, pos) -> [ Atom "file"; Atom p; int pos ]
                  | Images.Fi_listener port -> [ Atom "listener"; int port ]
                  | Images.Fi_sock cid -> [ Atom "sock"; int cid ]
                in
                List (int fd :: kind))
              t.Images.files.Images.f_fds));
      field "next-fd" (int t.Images.files.Images.f_next_fd);
      field "tcp"
        (List
           (List.map
              (fun (s : Net.conn_snapshot) ->
                List
                  [
                    int s.Net.cs_id;
                    int s.Net.cs_port;
                    Atom (Bytesx.hex_of_string s.Net.cs_c2s);
                    int s.Net.cs_c2s_consumed;
                    Atom (Bytesx.hex_of_string s.Net.cs_s2c);
                    int s.Net.cs_s2c_consumed;
                    int (if s.Net.cs_client_closed then 1 else 0);
                    int (if s.Net.cs_server_closed then 1 else 0);
                  ])
              t.Images.tcp));
      field "mmap-hint" (hex64 t.Images.mmap_hint);
    ]

let unhex_str sx = Bytes.to_string (unhex_bytes sx)

let of_sexp (sx : Sexpr.t) : Images.t =
  let get name =
    match get_field name sx with
    | Some v -> v
    | None -> raise (Parse_error ("image: missing " ^ name))
  in
  let as_list = function List l -> l | Atom _ -> raise (Parse_error "expected list") in
  {
    Images.core = core_of_sexp (get "core");
    mm = List.map vma_of_sexp (as_list (get "mm"));
    pagemap =
      List.map
        (function
          | List [ va; np; off ] ->
              { Images.pm_vaddr = as_i64 va; pm_npages = as_int np; pm_off = as_int off }
          | _ -> raise (Parse_error "pagemap entry"))
        (as_list (get "pagemap"));
    pages = unhex_bytes (get "pages");
    files =
      {
        Images.f_fds =
          List.map
            (function
              | List (fd :: kind) ->
                  let k =
                    match kind with
                    | [ Atom "stdin" ] -> Images.Fi_stdin
                    | [ Atom "stdout" ] -> Images.Fi_stdout
                    | [ Atom "stderr" ] -> Images.Fi_stderr
                    | [ Atom "file"; p; pos ] -> Images.Fi_file (as_atom p, as_int pos)
                    | [ Atom "listener"; port ] -> Images.Fi_listener (as_int port)
                    | [ Atom "sock"; cid ] -> Images.Fi_sock (as_int cid)
                    | _ -> raise (Parse_error "fd kind")
                  in
                  (as_int fd, k)
              | _ -> raise (Parse_error "fd entry"))
            (as_list (get "files"));
        f_next_fd = as_int (get "next-fd");
      };
    tcp =
      List.map
        (function
          | List [ id; port; c2s; c2sc; s2c; s2cc; cc; sc ] ->
              {
                Net.cs_id = as_int id;
                cs_port = as_int port;
                cs_c2s = unhex_str c2s;
                cs_c2s_consumed = as_int c2sc;
                cs_s2c = unhex_str s2c;
                cs_s2c_consumed = as_int s2cc;
                cs_client_closed = as_int cc = 1;
                cs_server_closed = as_int sc = 1;
              }
          | _ -> raise (Parse_error "tcp entry"))
        (as_list (get "tcp"));
    mmap_hint = as_i64 (get "mmap-hint");
  }

(** [crit decode]: binary image blob to text. *)
let decode_to_text (blob : string) : string =
  Fault.site "crit.decode";
  Sexpr.to_string (to_sexp (Images.decode blob))

(** [crit encode]: text back to a binary image blob. *)
let encode_from_text (text : string) : string =
  Fault.site "crit.encode";
  Images.encode (of_sexp (Sexpr.of_string text))

(** [crit x <dir> mems]-style summary of the memory map. *)
let show_mems (img : Images.t) : string =
  let rows =
    List.map
      (fun (v : Images.vma_img) ->
        [
          Printf.sprintf "0x%Lx" v.Images.vi_start;
          Printf.sprintf "0x%Lx" (Int64.add v.Images.vi_start (Int64.of_int v.Images.vi_len));
          Self.prot_to_string (Self.prot_of_int v.Images.vi_prot);
          (match v.Images.vi_file with Some (f, off) -> Printf.sprintf "%s+0x%x" f off | None -> "anon");
          v.Images.vi_name;
        ])
      img.Images.mm
  in
  Table.render ~headers:[ "start"; "end"; "prot"; "backing"; "name" ]
    ~aligns:[ Table.R; Table.R; Table.L; Table.L; Table.L ]
    rows
