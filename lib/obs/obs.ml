(* Implementation notes: the registry is process-global (the whole tree
   lives in one OCaml process, and scenarios call [reset] between runs),
   and every write path is kept allocation-light — counters are a single
   mutable int field bumped once per retired guest instruction. *)

type labels = (string * string) list

(* ---------- enable switch + clock ---------- *)

let on = ref true
let set_enabled b = on := b
let enabled () = !on
let clock : (unit -> int64) option ref = ref None
let set_clock c = clock := c
let now_cycles () = match !clock with Some f -> f () | None -> 0L

(* ---------- growable float buffer ---------- *)

module Fbuf = struct
  type t = { mutable a : float array; mutable n : int }

  let create () = { a = [||]; n = 0 }

  let push t x =
    if t.n = Array.length t.a then begin
      let cap = max 16 (2 * t.n) in
      let a' = Array.make cap 0. in
      Array.blit t.a 0 a' 0 t.n;
      t.a <- a'
    end;
    t.a.(t.n) <- x;
    t.n <- t.n + 1

  let to_list t = Array.to_list (Array.sub t.a 0 t.n)
  let snapshot t = Array.sub t.a 0 t.n
end

(* ---------- percentile core (shared with Stats.percentile) ---------- *)

let percentile_sorted a p =
  let n = Array.length a in
  if n = 0 then 0.
  else if n = 1 then a.(0)
  else begin
    let p = if p < 0. then 0. else if p > 100. then 100. else p in
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
  end

let percentile_list p xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  percentile_sorted a p

(* ---------- series ---------- *)

type counter = { mutable c : int; c_name : string; c_labels : labels }
type gauge = { mutable g : float; g_name : string; g_labels : labels }

type histogram = {
  h_name : string;
  h_labels : labels;
  h_buckets : float array;  (* ascending upper bounds; +Inf implicit *)
  h_counts : int array;  (* length = Array.length h_buckets + 1 *)
  mutable h_sum : float;
  h_values : Fbuf.t;
}

let canon labels = List.sort (fun (a, _) (b, _) -> compare a b) labels

(* Registry key: name plus canonical labels, rendered once. *)
let series_key name labels =
  match labels with
  | [] -> name
  | l ->
      name ^ "{"
      ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) l)
      ^ "}"

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let counter ?(labels = []) name =
  let labels = canon labels in
  let key = series_key name labels in
  match Hashtbl.find_opt counters key with
  | Some c -> c
  | None ->
      let c = { c = 0; c_name = name; c_labels = labels } in
      Hashtbl.replace counters key c;
      c

let incr c = if !on then c.c <- c.c + 1
let add c n = if !on then c.c <- c.c + n
let counter_value c = c.c

let gauge ?(labels = []) name =
  let labels = canon labels in
  let key = series_key name labels in
  match Hashtbl.find_opt gauges key with
  | Some g -> g
  | None ->
      let g = { g = 0.; g_name = name; g_labels = labels } in
      Hashtbl.replace gauges key g;
      g

let set_gauge g v = if !on then g.g <- v
let gauge_value g = g.g

let default_buckets = [ 1.; 10.; 100.; 1e3; 1e4; 1e5; 1e6; 1e7 ]

let histogram ?(labels = []) ?(buckets = default_buckets) name =
  let labels = canon labels in
  let key = series_key name labels in
  match Hashtbl.find_opt histograms key with
  | Some h -> h
  | None ->
      let b = Array.of_list (List.sort_uniq compare buckets) in
      let h =
        {
          h_name = name;
          h_labels = labels;
          h_buckets = b;
          h_counts = Array.make (Array.length b + 1) 0;
          h_sum = 0.;
          h_values = Fbuf.create ();
        }
      in
      Hashtbl.replace histograms key h;
      h

let observe h x =
  if !on then begin
    let nb = Array.length h.h_buckets in
    let i = ref 0 in
    while !i < nb && x > h.h_buckets.(!i) do
      Stdlib.incr i
    done;
    h.h_counts.(!i) <- h.h_counts.(!i) + 1;
    h.h_sum <- h.h_sum +. x;
    Fbuf.push h.h_values x
  end

let hist_count h = h.h_values.Fbuf.n
let hist_sum h = h.h_sum
let hist_values h = Fbuf.to_list h.h_values

let hist_percentile h p =
  let a = Fbuf.snapshot h.h_values in
  Array.sort compare a;
  percentile_sorted a p

(* ---------- spans ---------- *)

(* Cycle durations live in span.cycles{span=NAME} histograms (the
   deterministic axis); host CPU seconds live here, off to the side, so
   the default dump stays reproducible. *)
let span_hosts : (string, Fbuf.t) Hashtbl.t = Hashtbl.create 16
let span_cycle_buckets = [ 10.; 100.; 1e3; 1e4; 1e5; 1e6; 1e7; 1e8 ]

let span_hist name =
  histogram ~labels:[ ("span", name) ] ~buckets:span_cycle_buckets
    "span.cycles"

let span_host name =
  match Hashtbl.find_opt span_hosts name with
  | Some b -> b
  | None ->
      let b = Fbuf.create () in
      Hashtbl.replace span_hosts name b;
      b

let register_span name =
  ignore (span_hist name);
  ignore (span_host name)

let record_span name ~cycles ~seconds =
  observe (span_hist name) cycles;
  if !on then Fbuf.push (span_host name) seconds

let with_span name f =
  if not !on then f ()
  else begin
    let c0 = now_cycles () in
    let t0 = Sys.time () in
    let finish () =
      record_span name
        ~cycles:(Int64.to_float (Int64.sub (now_cycles ()) c0))
        ~seconds:(Sys.time () -. t0)
    in
    match f () with
    | r ->
        finish ();
        r
    | exception e ->
        finish ();
        raise e
  end

let timed_span name f =
  let c0 = now_cycles () in
  let t0 = Sys.time () in
  let r = f () in
  let dt = Sys.time () -. t0 in
  if !on then
    record_span name
      ~cycles:(Int64.to_float (Int64.sub (now_cycles ()) c0))
      ~seconds:dt;
  (r, dt)

let span_cycles name = hist_values (span_hist name)
let span_seconds name = Fbuf.to_list (span_host name)

let span_names () =
  Hashtbl.fold (fun k _ acc -> k :: acc) span_hosts []
  |> List.sort compare

(* ---------- event ring ---------- *)

type event = {
  ev_seq : int;
  ev_clock : int64;
  ev_kind : string;
  ev_detail : string;
}

let ring : event Queue.t = Queue.create ()
let ring_cap = ref 1024
let ring_seq = ref 0
let dropped = ref 0

let trim () =
  while Queue.length ring > !ring_cap do
    ignore (Queue.pop ring);
    Stdlib.incr dropped
  done

let event ~kind detail =
  if !on then begin
    Queue.push
      { ev_seq = !ring_seq; ev_clock = now_cycles (); ev_kind = kind;
        ev_detail = detail }
      ring;
    Stdlib.incr ring_seq;
    trim ()
  end

let events () = List.of_seq (Queue.to_seq ring)
let ring_capacity () = !ring_cap

let set_ring_capacity n =
  ring_cap := max 1 n;
  trim ()

let ring_dropped () = !dropped

(* ---------- reset ---------- *)

let reset () =
  Hashtbl.reset counters;
  Hashtbl.reset gauges;
  Hashtbl.reset histograms;
  Hashtbl.reset span_hosts;
  Queue.clear ring;
  ring_seq := 0;
  dropped := 0;
  clock := None

(* ---------- exposition ---------- *)

let buf_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* Deterministic float rendering: integers without a mantissa tail,
   everything else via %.9g (same double ⇒ same string). *)
let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let buf_labels b labels =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      buf_json_string b k;
      Buffer.add_char b ':';
      buf_json_string b v)
    labels;
  Buffer.add_char b '}'

let sorted_series tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let dump_json ?(host = false) () =
  let b = Buffer.create 4096 in
  let comma_sep f xs =
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string b ",\n";
        f x)
      xs
  in
  Buffer.add_string b "{\n\"counters\": [\n";
  comma_sep
    (fun (_, c) ->
      Buffer.add_string b "  {\"name\":";
      buf_json_string b c.c_name;
      Buffer.add_string b ",\"labels\":";
      buf_labels b c.c_labels;
      Buffer.add_string b (Printf.sprintf ",\"value\":%d}" c.c))
    (sorted_series counters);
  Buffer.add_string b "\n],\n\"gauges\": [\n";
  comma_sep
    (fun (_, g) ->
      Buffer.add_string b "  {\"name\":";
      buf_json_string b g.g_name;
      Buffer.add_string b ",\"labels\":";
      buf_labels b g.g_labels;
      Buffer.add_string b (",\"value\":" ^ json_float g.g ^ "}"))
    (sorted_series gauges);
  Buffer.add_string b "\n],\n\"histograms\": [\n";
  comma_sep
    (fun (_, h) ->
      Buffer.add_string b "  {\"name\":";
      buf_json_string b h.h_name;
      Buffer.add_string b ",\"labels\":";
      buf_labels b h.h_labels;
      Buffer.add_string b
        (Printf.sprintf ",\"count\":%d,\"sum\":%s" (hist_count h)
           (json_float h.h_sum));
      List.iter
        (fun p ->
          Buffer.add_string b
            (Printf.sprintf ",\"p%g\":%s" p (json_float (hist_percentile h p))))
        [ 50.; 90.; 99. ];
      Buffer.add_string b ",\"buckets\":[";
      Array.iteri
        (fun i le ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "{\"le\":%s,\"n\":%d}" (json_float le)
               h.h_counts.(i)))
        h.h_buckets;
      if Array.length h.h_buckets > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"le\":\"+Inf\",\"n\":%d}]}"
           h.h_counts.(Array.length h.h_buckets)))
    (sorted_series histograms);
  Buffer.add_string b "\n],\n\"events\": [\n";
  comma_sep
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "  {\"seq\":%d,\"clock\":%Ld,\"kind\":" e.ev_seq
           e.ev_clock);
      buf_json_string b e.ev_kind;
      Buffer.add_string b ",\"detail\":";
      buf_json_string b e.ev_detail;
      Buffer.add_char b '}')
    (events ());
  Buffer.add_string b
    (Printf.sprintf "\n],\n\"events_dropped\": %d" !dropped);
  if host then begin
    Buffer.add_string b ",\n\"spans_host_seconds\": {\n";
    comma_sep
      (fun name ->
        let vs = span_seconds name in
        let total = List.fold_left ( +. ) 0. vs in
        let n = List.length vs in
        Buffer.add_string b "  ";
        buf_json_string b name;
        Buffer.add_string b
          (Printf.sprintf ": {\"count\":%d,\"total\":%s,\"mean\":%s}" n
             (json_float total)
             (json_float (if n = 0 then 0. else total /. float_of_int n))))
      (span_names ());
    Buffer.add_string b "\n}"
  end;
  Buffer.add_string b "\n}\n";
  Buffer.contents b

let dump_text () =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "== counters ==";
  List.iter (fun (k, c) -> line "  %-44s %d" k c.c)
    (sorted_series counters);
  line "== gauges ==";
  List.iter (fun (k, g) -> line "  %-44s %s" k (json_float g.g))
    (sorted_series gauges);
  line "== histograms ==";
  List.iter
    (fun (k, h) ->
      line "  %-44s count=%d sum=%s p50=%s p90=%s p99=%s" k (hist_count h)
        (json_float h.h_sum)
        (json_float (hist_percentile h 50.))
        (json_float (hist_percentile h 90.))
        (json_float (hist_percentile h 99.)))
    (sorted_series histograms);
  line "== spans (host CPU seconds; non-reproducible axis) ==";
  List.iter
    (fun name ->
      let vs = span_seconds name in
      let n = List.length vs in
      let total = List.fold_left ( +. ) 0. vs in
      line "  %-44s count=%d total=%.6fs mean=%.6fs" name n total
        (if n = 0 then 0. else total /. float_of_int n))
    (span_names ());
  line "== events (%d in ring, %d dropped) ==" (Queue.length ring) !dropped;
  List.iter
    (fun e -> line "  [%4d @%Ld] %-10s %s" e.ev_seq e.ev_clock e.ev_kind e.ev_detail)
    (events ());
  Buffer.contents b
