(** The observability subsystem: a process-wide metric registry (labeled
    counters / gauges / histograms with exact percentile readback), span
    tracing for the cut pipeline, and a bounded event ring unifying
    supervisor decisions, journal records, fault firings and per-block
    trap hits into one ordered stream.

    Everything here is deterministic under the virtual clock: metrics and
    events carry only virtual-cycle timestamps, so the same seed and the
    same scenario produce a byte-identical {!dump_json}. Host (CPU) span
    timings are kept on a separate axis and only appear in dumps when
    explicitly requested with [~host:true] — they are the one
    intentionally non-reproducible signal (DESIGN.md §6).

    This library sits below [dynacut_util] and depends on nothing, so the
    whole stack (including [Fault] and [Stats]) can report into it. *)

type labels = (string * string) list
(** Label pairs; canonicalised (sorted by key) on registration, so
    [\[("a","1");("b","2")\]] and [\[("b","2");("a","1")\]] name the same
    series. *)

(** {2 Registry lifecycle} *)

val set_enabled : bool -> unit
(** When disabled, every write ([incr]/[observe]/[event]/span recording)
    is a no-op — the baseline for measuring instrumentation overhead.
    Registration and readback still work. Defaults to enabled. *)

val enabled : unit -> bool

val reset : unit -> unit
(** Drop every registered metric, every ring event, registered spans and
    the clock source. Handles created before the reset stay usable but
    are orphaned: they no longer appear in dumps. Call at the start of a
    scenario, before the machine is created. Does not change
    {!set_enabled} or the ring capacity. *)

val set_clock : (unit -> int64) option -> unit
(** Install the virtual-clock source used to stamp ring events and span
    cycle durations. [Machine.create] installs its own clock; without
    one, timestamps read 0. *)

val now_cycles : unit -> int64

(** {2 Counters} *)

type counter

val counter : ?labels:labels -> string -> counter
(** Find-or-create; the same (name, labels) always yields the same
    series. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {2 Gauges} *)

type gauge

val gauge : ?labels:labels -> string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {2 Histograms} *)

type histogram

val histogram : ?labels:labels -> ?buckets:float list -> string -> histogram
(** Fixed cumulative buckets ([buckets] are ascending upper bounds; a
    [+Inf] bucket is implicit). Raw observations are also retained, so
    percentile readback is exact rather than bucket-interpolated. *)

val observe : histogram -> float -> unit
val hist_count : histogram -> int
val hist_sum : histogram -> float

val hist_values : histogram -> float list
(** Raw observations, oldest first. *)

val hist_percentile : histogram -> float -> float
(** Exact percentile (linear interpolation over the sorted raw
    observations); 0. when empty. *)

(** {2 Percentile core}

    Shared with [Stats.percentile] so there is exactly one percentile
    definition in the tree. *)

val percentile_sorted : float array -> float -> float
(** [percentile_sorted a p] with [a] already ascending: nearest-rank with
    linear interpolation between the two straddling order statistics
    (the "linear" / type-7 estimator). [p] is clamped to [0,100];
    empty input yields 0. *)

val percentile_list : float -> float list -> float
(** Convenience: copy to an array, sort, interpolate. O(n log n). *)

(** {2 Spans}

    A span is a named timed region of the cut pipeline (checkpoint, crit,
    rewrite, inject, restore, tcp_repair, plus the journal.lock,
    journal.append and recover.replay regions). Each
    completion records the duration twice: in virtual cycles (a
    [span.cycles{span=NAME}] histogram, deterministic) and in host CPU
    seconds (a separate axis, see {!span_seconds}). *)

val register_span : string -> unit
(** Pre-register so the span appears in dumps (count 0) even before its
    first completion — keeps the exposed stage set stable. *)

val with_span : string -> (unit -> 'a) -> 'a
(** Time [f] against both axes; records even when [f] raises. *)

val timed_span : string -> (unit -> 'a) -> 'a * float
(** Like {!with_span} but also returns the host-seconds duration (the
    [Stats.time_it] contract), recording only on normal return. Returns
    the measurement even when the registry is disabled. *)

val span_cycles : string -> float list
(** Recorded virtual-cycle durations, oldest first. *)

val span_seconds : string -> float list
(** Recorded host-CPU durations, oldest first. Non-reproducible axis. *)

val span_names : unit -> string list
(** Every registered span name, sorted. *)

(** {2 Event ring} *)

type event = {
  ev_seq : int;  (** monotonic within a scenario; never reused *)
  ev_clock : int64;  (** virtual cycles at emission *)
  ev_kind : string;  (** "supervisor" | "journal" | "fault" | "trap" | ... *)
  ev_detail : string;
}

val event : kind:string -> string -> unit
(** Append to the ring; the oldest event is evicted once the ring is at
    capacity. *)

val events : unit -> event list
(** Oldest first. *)

val ring_capacity : unit -> int

val set_ring_capacity : int -> unit
(** Default 1024; shrinking evicts oldest-first immediately. Capacities
    < 1 are clamped to 1. Survives {!reset}. *)

val ring_dropped : unit -> int
(** Events evicted since the last {!reset}. *)

(** {2 Exposition} *)

val dump_json : ?host:bool -> unit -> string
(** The whole registry as a single JSON document with sorted, stable
    ordering: same registry state ⇒ byte-identical output. [~host:true]
    adds the per-span host-seconds section (non-reproducible). *)

val dump_text : unit -> string
(** Human-oriented rendering of the same data. *)
