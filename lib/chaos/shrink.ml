(** Delta-debugging schedule shrinker (DESIGN.md §6c).

    Given a schedule whose run violates an invariant, [minimize] finds a
    1-minimal sub-schedule that still violates it: classic ddmin over
    the event list — drop complement chunks at increasing granularity,
    then verify no single event can be removed. The seed never changes,
    so every candidate replays the same virtual world and the final
    repro ({!Schedule.to_replay}) reproduces the failure from the seed
    alone. *)

(* split [l] into [n] chunks of near-equal length, in order *)
let chunks n l =
  let len = List.length l in
  let size = max 1 ((len + n - 1) / n) in
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
        if k = size then go (List.rev cur :: acc) [ x ] 1 rest
        else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 l

let complements cs =
  List.mapi (fun i _ -> List.concat (List.filteri (fun j _ -> j <> i) cs)) cs

(** ddmin: smallest event subset (same seed) for which [failing] still
    holds. [failing] must hold for [s] itself — the caller found a
    violating run; we only make it smaller. Runs the schedule
    O(k²) times in the worst case (k = event count). *)
let minimize ~(failing : Schedule.t -> bool) (s : Schedule.t) : Schedule.t =
  let with_events evs = { s with Schedule.sc_events = evs } in
  let rec ddmin events n =
    let len = List.length events in
    if len <= 1 then events
    else begin
      let cs = chunks n events in
      (* a single chunk that still fails: recurse into it *)
      match List.find_opt (fun c -> failing (with_events c)) cs with
      | Some c -> ddmin c 2
      | None -> (
          (* a complement that still fails: drop the chunk *)
          match
            List.find_opt (fun c -> failing (with_events c)) (complements cs)
          with
          | Some c -> ddmin c (max 2 (n - 1))
          | None ->
              if n >= len then events else ddmin events (min len (2 * n)))
    end
  in
  let minimal = ddmin s.Schedule.sc_events 2 in
  (* 1-minimality: removing any single remaining event must pass *)
  let rec prune evs =
    let removable =
      List.find_opt
        (fun e ->
          List.length evs > 1
          && failing (with_events (List.filter (fun x -> x <> e) evs)))
        evs
    in
    match removable with
    | Some e -> prune (List.filter (fun x -> x <> e) evs)
    | None -> evs
  in
  with_events (prune minimal)
