(** Invariant oracles for chaos runs (DESIGN.md §6c).

    Safety — must hold after any schedule, once faults are cleared and
    recovery has run:

    - {b applied XOR unchanged}: every worker's feature blocks are all
      int3 or all original bytes, never mixed within one pid;
    - {b committed waves kept}: a wave the (post-recovery) manifest
      records as done has every member cut, and pids recovery unwound
      are fully original;
    - {b recovery idempotent}: a second [Fleet.recover] pass leaves the
      machine-state digest unchanged;
    - {b no silent drops}: the load generator accounts for every offered
      request as completed or failed.

    Liveness is the executor's business (it owns the clock): the fleet
    must answer again within a bounded virtual-cycle budget after faults
    clear, and goodput must recover to a floor. *)

type violation = { v_name : string; v_detail : string }

let violation v_name fmt =
  Printf.ksprintf (fun v_detail -> { v_name; v_detail }) fmt

let pp_violation ppf v = Format.fprintf ppf "%s: %s" v.v_name v.v_detail

(** Everything the safety checks need to inspect one fleet. *)
type ctx = {
  oc_machine : Machine.t;
  oc_pids : int list;  (** worker tree-root pids *)
  oc_base : int64;  (** guest text base of the workers' binary *)
  oc_blocks : Covgraph.block list;  (** effective feature blocks *)
  oc_originals : int list;  (** original first byte per block *)
}

let block_bytes (ctx : ctx) pid =
  let mem = (Machine.proc_exn ctx.oc_machine pid).Proc.mem in
  List.map
    (fun (b : Covgraph.block) ->
      Mem.peek8 mem (Int64.add ctx.oc_base (Int64.of_int b.Covgraph.b_off)))
    ctx.oc_blocks

let all_cut (ctx : ctx) pid =
  List.for_all (fun x -> x = 0xCC) (block_bytes ctx pid)

let all_original (ctx : ctx) pid = block_bytes ctx pid = ctx.oc_originals

(** Per-pid applied XOR unchanged, across the whole fleet. *)
let check_xor (ctx : ctx) : violation list =
  List.filter_map
    (fun pid ->
      if all_cut ctx pid || all_original ctx pid then None
      else
        Some
          (violation "xor" "pid %d is half-patched (%s)" pid
             (String.concat ","
                (List.map string_of_int (block_bytes ctx pid)))))
    ctx.oc_pids

(** Committed waves kept: read the manifest back (post-recovery, so the
    valid prefix is authoritative), and require every member of a
    [Wave_done] wave to be fully cut, and every pid recovery unwound to
    be fully original. Waves the manifest lost (torn tail, corruption)
    impose nothing here — recovery already reverted them uniformly, and
    {!check_xor} holds either way. *)
let check_waves (ctx : ctx) ~(plan : int list list)
    ~(recovery : Fleet.recovery) : violation list =
  let man = Journal.Manifest.attach ctx.oc_machine.Machine.fs ~dir:Fleet.manifest_dir in
  let entries, _torn = Journal.Manifest.read man in
  let s = Journal.Manifest.summarize entries in
  let of_wave w = try List.nth plan (w - 1) with _ -> [] in
  let completed =
    List.concat_map of_wave s.Journal.Manifest.m_completed
  in
  List.filter_map
    (fun pid ->
      if not (all_cut ctx pid) then
        Some (violation "committed-wave-lost" "pid %d of a done wave is not cut" pid)
      else None)
    completed
  @ List.filter_map
      (fun pid ->
        if not (all_original ctx pid) then
          Some (violation "unwound-not-original" "unwound pid %d is not original" pid)
        else None)
      recovery.Fleet.fr_unwound

(** Deterministic digest of everything recovery can touch: every file in
    the machine fs (journals, manifests, images) plus each worker's
    state and feature bytes. Fencing tokens ([.../lock]) are excluded —
    their epoch is monotonic by design: any recovery pass that finds a
    fence bumps it, so the lock can differ between two otherwise
    identical states. Two digests agree iff the states agree. *)
let state_digest (ctx : ctx) : int64 =
  let b = Buffer.create 4096 in
  let fs = ctx.oc_machine.Machine.fs in
  let is_fence path =
    let sfx = "/lock" in
    let lp = String.length path and ls = String.length sfx in
    lp >= ls && String.sub path (lp - ls) ls = sfx
  in
  List.iter
    (fun path ->
      Buffer.add_string b path;
      Buffer.add_char b '\000';
      Buffer.add_string b (Option.value ~default:"" (Vfs.find fs path));
      Buffer.add_char b '\000')
    (List.sort compare (List.filter (fun p -> not (is_fence p)) (Vfs.list fs)));
  List.iter
    (fun pid ->
      let state =
        match Machine.proc ctx.oc_machine pid with
        | Some p -> Proc.state_to_string p.Proc.state
        | None -> "reaped"
      in
      Buffer.add_string b (Printf.sprintf "pid=%d %s " pid state);
      List.iter
        (fun byte -> Buffer.add_string b (string_of_int byte))
        (match Machine.proc ctx.oc_machine pid with
        | Some _ -> block_bytes ctx pid
        | None -> []))
    ctx.oc_pids;
  Validate.checksum (Buffer.contents b)

(** Recovery idempotent by state digest: with faults cleared and one
    recovery pass already run, a second pass must change nothing. *)
let check_recover_idempotent (ctx : ctx) : violation list =
  let d1 = state_digest ctx in
  let (_ : Fleet.recovery) =
    Fleet.recover ctx.oc_machine ~pids:ctx.oc_pids
  in
  let d2 = state_digest ctx in
  if d1 <> d2 then
    [ violation "recover-idempotent" "digest %Lx -> %Lx across a second pass" d1 d2 ]
  else []

(** Silent-corruption defense (DESIGN.md §6d): every injected bitflip
    still resident at audit time — the victim is alive and still runs on
    the page table the flip landed in, so no restore wiped the damage —
    must have produced a scrubber detection ([flips] is that surviving
    count, [detected] the run's mismatch total), and after the forced
    post-run heal no immutable page may still diverge from its baseline
    ([residue] is the second audit's findings). *)
let check_scrub ~(flips : int) ~(detected : int)
    ~(residue : Integrity.finding list) : violation list =
  (if flips > 0 && detected = 0 then
     [
       violation "scrub-detection"
         "%d surviving bitflip(s) but the scrubber detected none" flips;
     ]
   else [])
  @ List.map
      (fun f ->
        violation "scrub-residue" "post-repair divergence: %s"
          (Format.asprintf "%a" Integrity.pp_finding f))
      residue

(** Load-generator accounting: every offered request ends exactly once. *)
let check_accounting (s : Loadgen.stats) : violation list =
  if s.Loadgen.s_completed + s.Loadgen.s_failed <> s.Loadgen.s_offered then
    [
      violation "request-dropped" "offered=%d but completed=%d + failed=%d"
        s.Loadgen.s_offered s.Loadgen.s_completed s.Loadgen.s_failed;
    ]
  else []

(** Goodput floor after faults clear. *)
let check_goodput ~(floor : float) (s : Loadgen.stats) : violation list =
  let offered = max 1 s.Loadgen.s_offered in
  let goodput = float_of_int s.Loadgen.s_completed /. float_of_int offered in
  if goodput < floor then
    [
      violation "goodput-floor" "goodput %.2f below floor %.2f (%d/%d)"
        goodput floor s.Loadgen.s_completed offered;
    ]
  else []
