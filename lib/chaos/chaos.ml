(** Deterministic chaos engine (DESIGN.md §6c).

    Two complementary halves:

    - {!run}: execute one {!Schedule.t} against a live web-server fleet
      — traffic, a rolling rollout, more traffic — arming each event off
      its trigger, treating typed pipeline failures as clean refusals,
      recovering from controller deaths, and finally checking the
      {!Oracle} invariants once faults clear. Everything draws from
      {!Rng} seeded by the schedule, so a run replays bit-for-bit.

    - {!coverage_matrix}: a directed site × mode sweep — for every
      registered fault site and every {!Fault.applicable_modes} mode, a
      scenario that provably reaches the site, strikes it once, and
      asserts the uniform contract: the site fired, every pid is
      applied-XOR-unchanged, recovery converges, and the app serves.
      This is the acceptance gate ci.sh enforces: no registered site may
      have an unexercised applicable mode. *)

let get = "GET /index.html HTTP/1.0\r\n\r\n"
let put = "PUT /evil.html HTTP/1.0\r\n\r\nowned"

let status resp =
  match String.index_opt resp ' ' with
  | Some k when String.length resp >= k + 4 -> String.sub resp (k + 1) 3
  | _ -> "???"

(* typed failures the engine treats as a clean refusal: the operation
   was denied, nothing is half-done. Anything outside this domain is a
   host bug and propagates. *)
let refusal_of_exn : exn -> string option = function
  | Fault.Injected { site; _ } -> Some (Printf.sprintf "injected at %s" site)
  | Fault.Storage_error { site; kind } ->
      Some (Printf.sprintf "%s at %s" (Fault.storage_kind_to_string kind) site)
  | Journal.Busy { txid } -> Some (Printf.sprintf "journal busy (tx %d)" txid)
  | Journal.Fenced { epoch; lock_epoch } ->
      Some (Printf.sprintf "fenced (epoch %d, lock %d)" epoch lock_epoch)
  | Dynacut.Dynacut_error m -> Some (Printf.sprintf "dynacut: %s" m)
  | Validate.Validate_error m -> Some (Printf.sprintf "validate: %s" m)
  | Restore.Restore_error m -> Some (Printf.sprintf "restore: %s" m)
  | Net.Refused _ -> Some "connection refused"
  | Net.Timed_out _ -> Some "connection timed out"
  | Fleet.Fleet_error m -> Some (Printf.sprintf "fleet: %s" m)
  | Balancer.Balancer_error m -> Some (Printf.sprintf "balancer: %s" m)
  | _ -> None

(* ---------- the fleet executor ---------- *)

let lpolicy = { Dynacut.method_ = `First_byte; on_trap = `Redirect "ltpd_403" }
let lblocks = lazy (Common.web_feature_blocks Workload.ltpd)

(* the redirect symbol each web server exports for degraded requests *)
let redirect_sym (app : Workload.app) =
  match app.Workload.a_name with
  | "ltpd" -> "ltpd_403"
  | "ngx" -> "ngx_declined"
  | n -> invalid_arg (Printf.sprintf "Chaos: no redirect symbol for %s" n)

(* feature blocks per app, computed once — tracing is expensive *)
let blocks_cache : (string, Covgraph.block list) Hashtbl.t = Hashtbl.create 4

let blocks_for (app : Workload.app) =
  match Hashtbl.find_opt blocks_cache app.Workload.a_name with
  | Some b -> b
  | None ->
      let b = Common.web_feature_blocks app in
      Hashtbl.add blocks_cache app.Workload.a_name b;
      b

type config = {
  c_app : Workload.app;  (** target web server (ltpd | ngx) *)
  c_workers : int;  (** fleet size *)
  c_waves : int;  (** rollout waves *)
  c_recover_budget : int;
      (** liveness: cycles the fleet gets to serve again after faults
          clear (recovery + probe) *)
  c_goodput_floor : float;  (** liveness: post-fault goodput floor *)
}

let default_config =
  {
    c_app = Workload.ltpd;
    c_workers = 4;
    c_waves = 2;
    c_recover_budget = 60_000_000;
    c_goodput_floor = 0.5;
  }

type report = {
  r_schedule : Schedule.t;
  r_fired : (string * Fault.mode) list;  (** events that actually struck *)
  r_notes : string list;  (** refusals, deaths, recoveries — the run trail *)
  r_violations : Oracle.violation list;
  r_recovery_cycles : int;  (** faults-clear to first served reply *)
  r_goodput : float;  (** post-fault completed/offered *)
}

let passed r = r.r_violations = []

(* a stable fingerprint of everything that matters: used to prove a
   replayed schedule reproduces the run bit-for-bit *)
let report_digest (r : report) : int64 =
  Validate.checksum
    (String.concat "|"
       (Format.asprintf "%a" Schedule.pp r.r_schedule
       :: Printf.sprintf "recovery=%d" r.r_recovery_cycles
       :: Printf.sprintf "goodput=%.3f" r.r_goodput
       :: List.map
            (fun (s, m) -> Printf.sprintf "%s:%s" s (Fault.mode_to_string m))
            r.r_fired
       @ r.r_notes
       @ List.map (Format.asprintf "%a" Oracle.pp_violation) r.r_violations))

let pp_report ppf (r : report) =
  Format.fprintf ppf "schedule %a@ fired=[%s]@ %s"
    Schedule.pp r.r_schedule
    (String.concat ";"
       (List.map
          (fun (s, m) -> Printf.sprintf "%s:%s" s (Fault.mode_to_string m))
          r.r_fired))
    (if passed r then "PASS"
     else
       String.concat "; "
         (List.map (Format.asprintf "%a" Oracle.pp_violation) r.r_violations))

(* per-event trigger state: armed/fired bookkeeping between slices *)
type ev_state = {
  es_event : Schedule.event;
  mutable es_armed : bool;
  mutable es_done : bool;
  es_base_fired : int;  (** [Fault.fired] at arm time *)
}

(** Run one schedule against a fresh [config.c_app] fleet (ltpd by
    default). [extra_oracle] lets a
    test add a deliberately broken invariant (the shrinker demo). *)
let run ?(config = default_config)
    ?(extra_oracle : (Oracle.ctx -> Oracle.violation list) option)
    (sched : Schedule.t) : report =
  Fault.reset ();
  Fault.seed sched.Schedule.sc_seed;
  let notes = ref [] in
  let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
  let violations = ref [] in
  let app = config.c_app in
  let sym = redirect_sym app in
  let port =
    match app.Workload.a_port with
    | Some p -> p
    | None ->
        invalid_arg
          (Printf.sprintf "Chaos: %s is not a server" app.Workload.a_name)
  in
  let blocks = blocks_for app in
  let policy = { Dynacut.method_ = `First_byte; on_trap = `Redirect sym } in
  (* boot happens clean: chaos starts once the fleet is ready *)
  let ctxs =
    Workload.spawn_fleet ~seed:sched.Schedule.sc_seed ~n:config.c_workers app
  in
  Workload.wait_fleet_ready ctxs;
  let m = (List.hd ctxs).Workload.m in
  let pids = List.map (fun c -> c.Workload.pid) ctxs in
  let fleet = Fleet.create m ~port ~pids ~blocks ~policy in
  let w = List.hd (Fleet.workers fleet) in
  let effective = Dynacut.redirect_filter w.Rollout.w_session ~sym blocks in
  let oracle =
    {
      Oracle.oc_machine = m;
      oc_pids = pids;
      oc_base = (Common.app_exe app).Self.base;
      oc_blocks = effective;
      oc_originals =
        List.map
          (fun (b : Covgraph.block) ->
            Mem.peek8
              (Machine.proc_exn m (List.hd pids)).Proc.mem
              (Int64.add (Common.app_exe app).Self.base
                 (Int64.of_int b.Covgraph.b_off)))
          effective;
    }
  in
  (* the background scrubber runs for the whole chaos window; baselines
     are captured now, while the fleet is provably clean — a flip that
     lands first would otherwise be baked into the manifest as truth *)
  Fleet.start_scrub fleet;
  List.iter (fun pid -> ignore (Fleet.scrub_now fleet ~pid)) pids;
  let mism0 = Obs.counter_value (Obs.counter "integrity.mismatches") in
  (* record every flip the schedule lands (victim, page, page table) so
     the post-run audit can tell surviving damage from damage a restore
     already wiped *)
  let flips : (int * int64 * Mem.t) list ref = ref [] in
  Fault.set_bitflip_hook
    (Some
       (fun ~scope rng ->
         match Machine.bitflip m ?pid:scope rng with
         | Some (pid, addr) ->
             flips := (pid, addr, (Machine.proc_exn m pid).Proc.mem) :: !flips
         | None -> ()));
  let t0 = m.Machine.clock in
  (* arm nth-occurrence events relative to now; windows arm in tick *)
  let states =
    List.map
      (fun (e : Schedule.event) ->
        (match e.Schedule.ev_trigger with
        | Schedule.Nth n ->
            Fault.arm_mode e.Schedule.ev_site
              (Fault.On_nth (Fault.hits e.Schedule.ev_site + n))
              e.Schedule.ev_mode
        | Schedule.Window _ -> ());
        {
          es_event = e;
          es_armed = (match e.Schedule.ev_trigger with Schedule.Nth _ -> true | _ -> false);
          es_done = false;
          es_base_fired = Fault.fired e.Schedule.ev_site;
        })
      sched.Schedule.sc_events
  in
  let tick () =
    let now = Int64.to_int (Int64.sub m.Machine.clock t0) in
    List.iter
      (fun es ->
        if not es.es_done then begin
          let site = es.es_event.Schedule.ev_site in
          if Fault.fired site > es.es_base_fired then es.es_done <- true
          else
            match es.es_event.Schedule.ev_trigger with
            | Schedule.Nth _ -> ()
            | Schedule.Window (a, b) ->
                if (not es.es_armed) && now >= a && now < b then begin
                  Fault.arm_mode site Fault.One_shot es.es_event.Schedule.ev_mode;
                  es.es_armed <- true
                end
                else if es.es_armed && now >= b then begin
                  Fault.disarm site;
                  es.es_armed <- false;
                  es.es_done <- true
                end
        end)
      states
  in
  (* controller deaths hand the fleet to a fresh recovery pass — with
     the surviving events still armed, so a second fault can strike the
     recovery itself. Events are one-shot, so this converges. *)
  let rec attempt_recover tries =
    if tries = 0 then
      violations :=
        Oracle.violation "recovery-stuck" "recovery did not converge"
        :: !violations
    else
      match Fleet.recover m ~pids with
      | (_ : Fleet.recovery) -> ()
      | exception Fault.Controller_killed { site } ->
          note "recovery died at %s" site;
          attempt_recover (tries - 1)
      | exception e -> (
          match refusal_of_exn e with
          | Some msg ->
              note "recovery refused: %s" msg;
              attempt_recover (tries - 1)
          | None -> raise e)
  in
  (* one background scrub step per traffic slice, like the drift tick —
     this is what makes [scrub.page] reachable for schedules *)
  let scrub_step () =
    match Fleet.scrub_tick fleet with
    | None -> ()
    | Some r ->
        if r.Fleet.sr_findings <> [] then
          note "scrub: pid %d diverged on %d page(s), %d repaired%s"
            r.Fleet.sr_pid
            (List.length r.Fleet.sr_findings)
            (List.length r.Fleet.sr_repaired)
            (if r.Fleet.sr_respawned then ", respawned" else "");
        (match r.Fleet.sr_refused with
        | Some s -> note "scrub: refused (%s)" s
        | None -> ())
    | exception Fault.Controller_killed { site } ->
        note "scrub: controller died at %s" site;
        attempt_recover 6
    | exception e -> (
        match refusal_of_exn e with
        | Some msg -> note "scrub: %s" msg
        | None -> raise e)
  in
  let request label =
    tick ();
    scrub_step ();
    (match Fleet.request fleet get with
    | `Reply (pid, resp) -> note "%s: pid %d answered %s" label pid (status resp)
    | `Refused -> note "%s: refused" label
    | `Shed -> note "%s: shed" label
    | `Timed_out pid -> note "%s: timed out on pid %d" label pid
    | exception Fault.Controller_killed { site } ->
        note "%s: controller died at %s" label site;
        attempt_recover 6
    | exception e -> (
        match refusal_of_exn e with
        | Some msg -> note "%s: %s" label msg
        | None -> raise e));
    tick ()
  in
  (* phase 1: pre-rollout traffic (dispatch/serve sites in play) *)
  for i = 1 to 4 do
    request (Printf.sprintf "pre.%d" i)
  done;
  (* phase 2: the rolling rollout (cut-path + manifest sites in play) *)
  tick ();
  let rollout_config =
    Rollout.
      {
        r_waves = config.c_waves;
        r_sup = { Supervisor.default_config with Supervisor.canary_windows = 1 };
      }
  in
  let drive () =
    match Fleet.request fleet get with
    | (_ : [ `Reply of int * string | `Refused | `Shed | `Timed_out of int ]) ->
        ()
    | exception e when refusal_of_exn e <> None -> ()
  in
  (match Fleet.rollout fleet ~config:rollout_config ~drive () with
  | outcome, _ -> note "rollout: %s" (Format.asprintf "%a" Rollout.pp_outcome outcome)
  | exception Fault.Controller_killed { site } ->
      note "rollout: controller died at %s" site;
      attempt_recover 6
  | exception e -> (
      match refusal_of_exn e with
      | Some msg -> note "rollout: %s" msg
      | None -> raise e));
  tick ();
  (* phase 3: post-rollout traffic (windows keep opening/closing) *)
  for i = 1 to 6 do
    request (Printf.sprintf "post.%d" i)
  done;
  (* phase 4: clear every fault, then recover to a uniform fleet *)
  note "faults cleared at +%d cycles"
    (Int64.to_int (Int64.sub m.Machine.clock t0));
  List.iter (fun es -> es.es_done <- true) states;
  Fault.disarm_all ();
  let recovery =
    match Fleet.recover m ~pids with
    | r -> r
    | exception e -> (
        (match refusal_of_exn e with
        | Some msg -> note "final recovery refused: %s" msg
        | None -> raise e);
        Fleet.recover m ~pids)
  in
  (* silent-corruption audit, before the byte-level oracles: flips that
     survived in place (victim alive on the same page table) must be
     detected by this forced scrub, healed, and a second audit must come
     back clean — and healing first keeps a flipped feature byte from
     masquerading as an xor violation *)
  let surviving =
    List.length
      (List.filter
         (fun (pid, _addr, mem0) ->
           match Machine.proc m pid with
           | Some p when Proc.is_live p -> p.Proc.mem == mem0
           | _ -> false)
         !flips)
  in
  List.iter
    (fun pid ->
      match Fleet.scrub_now fleet ~pid with
      | (r : Fleet.scrub_report) ->
          if r.Fleet.sr_findings <> [] then
            note "final scrub: pid %d healed %d page(s)%s" pid
              (List.length r.Fleet.sr_repaired)
              (if r.Fleet.sr_respawned then " (respawned)" else "")
      | exception e -> (
          match refusal_of_exn e with
          | Some msg -> note "final scrub refused: %s" msg
          | None -> raise e))
    pids;
  let residue =
    List.concat_map
      (fun pid ->
        try Integrity.scrub_full (Fleet.integrity fleet ~pid) ~pids:[ pid ] ()
        with e when refusal_of_exn e <> None -> [])
      pids
  in
  let detected =
    Obs.counter_value (Obs.counter "integrity.mismatches") - mism0
  in
  violations :=
    Oracle.check_scrub ~flips:surviving ~detected ~residue @ !violations;
  (* safety oracles *)
  violations := Oracle.check_xor oracle @ !violations;
  violations :=
    Oracle.check_waves oracle
      ~plan:(Rollout.plan ~pids ~waves:config.c_waves)
      ~recovery
    @ !violations;
  violations := Oracle.check_recover_idempotent oracle @ !violations;
  (match extra_oracle with
  | Some f -> violations := f oracle @ !violations
  | None -> ());
  (* liveness: the fleet must serve again within the budget *)
  let probe_start = m.Machine.clock in
  let rec probe k =
    if k = 0 then None
    else
      match Fleet.request fleet get with
      | `Reply (_, resp) when status resp = "200" ->
          Some (Int64.to_int (Int64.sub m.Machine.clock probe_start))
      | (_ : [ `Reply of int * string | `Refused | `Shed | `Timed_out of int ])
        ->
          probe (k - 1)
      | exception e when refusal_of_exn e <> None -> probe (k - 1)
  in
  let recovery_cycles =
    match probe 8 with
    | Some c ->
        if c > config.c_recover_budget then
          violations :=
            Oracle.violation "liveness-budget"
              "served after %d cycles (budget %d)" c config.c_recover_budget
            :: !violations;
        c
    | None ->
        violations :=
          Oracle.violation "liveness-serving"
            "fleet never served again after faults cleared"
          :: !violations;
        config.c_recover_budget
  in
  (* liveness: goodput back over the floor, and nothing silently lost *)
  let stats =
    Fleet.overload fleet
      {
        Loadgen.default_config with
        Loadgen.lg_seed = sched.Schedule.sc_seed;
        lg_requests = 30;
        lg_offered = 40.;
        lg_max_cycles = 60_000_000;
      }
      ~text:get
  in
  violations := Oracle.check_accounting stats @ !violations;
  violations :=
    Oracle.check_goodput ~floor:config.c_goodput_floor stats @ !violations;
  let goodput =
    float_of_int stats.Loadgen.s_completed
    /. float_of_int (max 1 stats.Loadgen.s_offered)
  in
  {
    r_schedule = sched;
    r_fired =
      List.filter_map
        (fun es ->
          if Fault.fired es.es_event.Schedule.ev_site > es.es_base_fired then
            Some (es.es_event.Schedule.ev_site, es.es_event.Schedule.ev_mode)
          else None)
        states;
    r_notes = List.rev !notes;
    r_violations = List.rev !violations;
    r_recovery_cycles = recovery_cycles;
    r_goodput = goodput;
  }

(* ---------- directed site × mode coverage ---------- *)

exception Probe_failure of string

let failp fmt = Printf.ksprintf (fun s -> raise (Probe_failure s)) fmt

(* strike: run [op] with (site, mode) armed one-shot. [`Completed] when
   the operation returned, [`Refused] on a typed clean refusal,
   [`Killed] on controller death. The site must have fired. *)
let strike site mode (op : unit -> unit) =
  Fault.arm_mode site Fault.One_shot mode;
  let outcome =
    match op () with
    | () -> `Completed
    | exception Fault.Controller_killed _ -> `Killed
    | exception e -> (
        match refusal_of_exn e with
        | Some msg -> `Refused msg
        | None -> raise e)
  in
  if Fault.fired site = 0 then failp "site never fired";
  (* a delay is a gray failure: slow, never wrong. A bitflip is silent:
     the damage is resident, the operation itself must proceed *)
  (match (mode, outcome) with
  | Fault.Delay _, `Refused msg -> failp "delay refused the operation: %s" msg
  | Fault.Delay _, `Killed -> failp "delay killed the controller"
  | Fault.Bitflip, `Refused msg -> failp "bitflip refused the operation: %s" msg
  | Fault.Bitflip, `Killed -> failp "bitflip killed the controller"
  | _ -> ());
  outcome

(* -- single-tree probes (ngx master/worker) -- *)

let napp = Workload.ngx
let nblocks = lazy (Common.web_feature_blocks napp)
let npolicy method_ = { Dynacut.method_; on_trap = `Redirect "ngx_declined" }

let nboot () =
  let c = Workload.spawn napp in
  Workload.wait_ready c;
  c

let tree_byte (c : Workload.ctx) pid (b : Covgraph.block) =
  Mem.peek8
    (Machine.proc_exn c.Workload.m pid).Proc.mem
    (Int64.add (Common.app_exe napp).Self.base (Int64.of_int b.Covgraph.b_off))

let assert_tree_xor ~what c session effective originals =
  List.iter
    (fun pid ->
      let got = List.map (tree_byte c pid) effective in
      if not (List.for_all (fun x -> x = 0xCC) got || got = originals) then
        failp "%s: pid %d is half-patched" what pid)
    (Dynacut.tree_pids session)

let assert_tree_serving ~what c =
  let s = status (Workload.rpc c get) in
  if s <> "200" then failp "%s: GET answered %s, not 200" what s

let tree_setup () =
  let c = nboot () in
  let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  let effective =
    Dynacut.redirect_filter session ~sym:"ngx_declined" (Lazy.force nblocks)
  in
  let originals = List.map (tree_byte c c.Workload.pid) effective in
  (c, session, effective, originals)

let tree_finish c session effective originals =
  let (_ : Dynacut.recovery) =
    Dynacut.recover c.Workload.m ~root_pid:c.Workload.pid
  in
  assert_tree_xor ~what:"after recover" c session effective originals;
  assert_tree_serving ~what:"after recover" c

(* fault strikes the cut transaction itself *)
let tree_probe ?(method_ = `First_byte) ?(tcp = false) site mode =
  let c, session, effective, originals = tree_setup () in
  let in_flight =
    if tcp then begin
      (* park a connection in the server so restore has TCP state to
         repair (the server blocks in recv on it across the cut) *)
      let conn = Net.connect c.Workload.m.Machine.net Ngx.port in
      ignore (Machine.run c.Workload.m ~max_cycles:500_000);
      Some conn
    end
    else None
  in
  let (_ : [ `Completed | `Killed | `Refused of string ]) =
    strike site mode (fun () ->
        ignore
          (Dynacut.try_cut session ~blocks:(Lazy.force nblocks)
             ~policy:(npolicy method_) ()))
  in
  let (_ : Dynacut.recovery) =
    Dynacut.recover c.Workload.m ~root_pid:c.Workload.pid
  in
  (* the repaired mid-cut connection must answer — an accepted request
     is never silently dropped, whichever way the fault went *)
  (match in_flight with
  | None -> ()
  | Some conn ->
      Net.client_send conn get;
      ignore (Machine.run c.Workload.m ~max_cycles:2_000_000);
      let s = status (Net.client_recv conn) in
      if s <> "200" then failp "in-flight request answered %s after recover" s);
  assert_tree_xor ~what:"after recover" c session effective originals;
  assert_tree_serving ~what:"after recover" c

(* fault strikes a journaled respawn of a reaped worker *)
let respawn_probe site mode =
  let c, session, effective, originals = tree_setup () in
  let (_ : Rewriter.journal list * Dynacut.timings) =
    Dynacut.cut session ~blocks:(Lazy.force nblocks) ~policy:(npolicy `First_byte)
  in
  let worker =
    match Dynacut.tree_pids session with
    | _root :: w :: _ -> w
    | _ -> failp "ngx tree has no worker"
  in
  Machine.reap c.Workload.m ~pid:worker;
  let respawn () =
    ignore
      (Dynacut.journaled_respawn session ~pid:worker
         ~path:(Dynacut.image_path session worker))
  in
  (match strike site mode respawn with
  | `Completed | `Killed -> ()
  | `Refused _ ->
      (* a refused respawn closes its own journal intent — the worker is
         legitimately still dead, and the supervisor's contract is to
         retry next tick. Do that retry (the one-shot fault is spent). *)
      respawn ());
  tree_finish c session effective originals

(* fault strikes the canary's fleet promotion *)
let promote_probe site mode =
  let c, session, effective, originals = tree_setup () in
  let sup =
    Supervisor.create session
      ~config:{ Supervisor.default_config with Supervisor.canary_windows = 1 }
      ~blocks:(Lazy.force nblocks) ~policy:(npolicy `First_byte)
  in
  let drive () = ignore (Workload.rpc ~max_cycles:800_000 c get) in
  let (_ : [ `Completed | `Killed | `Refused of string ]) =
    strike site mode (fun () ->
        ignore (Supervisor.guarded_cut sup ~canary:true ~drive ()))
  in
  tree_finish c session effective originals

(* fault strikes the breaker's automatic re-enable *)
let reenable_probe site mode =
  let c, session, effective, originals = tree_setup () in
  let sup =
    Supervisor.create session
      ~config:{ Supervisor.default_config with Supervisor.critical = true }
      ~blocks:(Lazy.force nblocks) ~policy:(npolicy `First_byte)
  in
  let drive () = ignore (Workload.rpc ~max_cycles:800_000 c get) in
  (match Supervisor.guarded_cut sup ~canary:false ~drive () with
  | Supervisor.R_promoted -> ()
  | r -> failp "setup rollout failed: %s" (Format.asprintf "%a" Supervisor.pp_rollout r));
  ignore (Workload.rpc ~max_cycles:800_000 c put);
  let (_ : [ `Completed | `Killed | `Refused of string ]) =
    strike site mode (fun () -> Supervisor.tick sup)
  in
  tree_finish c session effective originals

(* fault strikes the crit image/text round trip — no transaction open *)
let crit_probe site mode =
  let c, session, effective, originals = tree_setup () in
  Machine.freeze c.Workload.m ~pid:c.Workload.pid;
  let img = Checkpoint.dump c.Workload.m ~pid:c.Workload.pid () in
  Machine.thaw c.Workload.m ~pid:c.Workload.pid;
  let blob = Images.encode img in
  let text = Crit.decode_to_text blob in
  let (_ : [ `Completed | `Killed | `Refused of string ]) =
    strike site mode (fun () ->
        if site = "crit.decode" then ignore (Crit.decode_to_text blob)
        else ignore (Crit.encode_from_text text))
  in
  tree_finish c session effective originals

(* fault strikes the recovery pass replaying a controller death *)
let recover_probe site mode =
  let c, session, effective, originals = tree_setup () in
  Fault.arm ~kill:true "restore.process" Fault.One_shot;
  (match
     Dynacut.try_cut session ~blocks:(Lazy.force nblocks)
       ~policy:(npolicy `First_byte) ()
   with
  | (_ : Dynacut.cut_result) -> failp "staged controller death never struck"
  | exception Fault.Controller_killed _ -> ());
  let (_ : [ `Completed | `Killed | `Refused of string ]) =
    strike site mode (fun () ->
        ignore (Dynacut.recover c.Workload.m ~root_pid:c.Workload.pid))
  in
  tree_finish c session effective originals

(* -- fleet probes (ltpd workers) -- *)

let fleet_setup ?balancer ?(traced = false) ~n () =
  let ctxs = Workload.spawn_fleet ~traced ~n Workload.ltpd in
  Workload.wait_fleet_ready ctxs;
  let m = (List.hd ctxs).Workload.m in
  let pids = List.map (fun c -> c.Workload.pid) ctxs in
  let fleet =
    Fleet.create ?balancer m ~port:Ltpd.port ~pids ~blocks:(Lazy.force lblocks)
      ~policy:lpolicy
  in
  let w = List.hd (Fleet.workers fleet) in
  let effective =
    Dynacut.redirect_filter w.Rollout.w_session ~sym:"ltpd_403"
      (Lazy.force lblocks)
  in
  let oracle =
    {
      Oracle.oc_machine = m;
      oc_pids = pids;
      oc_base = (Common.app_exe Workload.ltpd).Self.base;
      oc_blocks = effective;
      oc_originals =
        List.map
          (fun (b : Covgraph.block) ->
            Mem.peek8
              (Machine.proc_exn m (List.hd pids)).Proc.mem
              (Int64.add (Common.app_exe Workload.ltpd).Self.base
                 (Int64.of_int b.Covgraph.b_off)))
          effective;
    }
  in
  (ctxs, m, pids, fleet, oracle)

let fleet_finish m pids oracle ~plan ~serving_fleet =
  let recovery =
    match Fleet.recover m ~pids with
    | r -> r
    | exception Fault.Controller_killed _ -> Fleet.recover m ~pids
  in
  List.iter
    (fun (v : Oracle.violation) ->
      failp "%s" (Format.asprintf "%a" Oracle.pp_violation v))
    (Oracle.check_xor oracle
    @ Oracle.check_waves oracle ~plan ~recovery
    @ Oracle.check_recover_idempotent oracle);
  match Fleet.request serving_fleet get with
  | `Reply (_, resp) ->
      let s = status resp in
      if s <> "200" then failp "after recover: GET answered %s, not 200" s
  | `Refused | `Shed | `Timed_out _ -> failp "after recover: fleet refused a GET"

(* fault strikes the rolling rollout (waves, manifest) *)
let fleet_rollout_probe site mode =
  let _ctxs, m, pids, fleet, oracle = fleet_setup ~n:4 () in
  let drive () =
    match Fleet.request fleet get with
    | (_ : [ `Reply of int * string | `Refused | `Shed | `Timed_out of int ]) ->
        ()
    | exception e when refusal_of_exn e <> None -> ()
  in
  let config =
    Rollout.
      {
        r_waves = 2;
        r_sup = { Supervisor.default_config with Supervisor.canary_windows = 1 };
      }
  in
  let (_ : [ `Completed | `Killed | `Refused of string ]) =
    strike site mode (fun () ->
        ignore (Fleet.rollout fleet ~config ~drive ()))
  in
  fleet_finish m pids oracle ~plan:(Rollout.plan ~pids ~waves:2)
    ~serving_fleet:fleet

(* heal every worker with a forced audit, then require a second audit of
   each to come back clean — the probes' "scrubbed back to health" bar *)
let fleet_heal_all fleet pids =
  List.iter (fun pid -> ignore (Fleet.scrub_now fleet ~pid)) pids

let assert_fleet_clean fleet pids =
  List.iter
    (fun pid ->
      match Integrity.scrub_full (Fleet.integrity fleet ~pid) ~pids:[ pid ] () with
      | [] -> ()
      | fs ->
          failp "pid %d still diverged after heal (%d finding(s))" pid
            (List.length fs))
    pids

(* fault strikes one dispatched request (balancer / net sites); a
   [Bitflip] lands silent damage the scrubber must then heal, so those
   runs bracket the strike with trusted baselines and a forced audit *)
let fleet_request_probe site mode =
  let _ctxs, m, pids, fleet, oracle = fleet_setup ~n:2 () in
  if mode = Fault.Bitflip then begin
    Fleet.start_scrub fleet;
    fleet_heal_all fleet pids
  end;
  let (_ : [ `Completed | `Killed | `Refused of string ]) =
    strike site mode (fun () -> ignore (Fleet.request fleet get))
  in
  if mode = Fault.Bitflip then begin
    fleet_heal_all fleet pids;
    assert_fleet_clean fleet pids
  end;
  fleet_finish m pids oracle ~plan:[] ~serving_fleet:fleet

(* fault strikes the scrubber's own page audit — including a Bitflip
   landing mid-audit, which the next pass must catch and heal *)
let scrub_probe site mode =
  let _ctxs, m, pids, fleet, oracle = fleet_setup ~n:2 () in
  Fleet.start_scrub fleet;
  fleet_heal_all fleet pids;
  let victim = List.hd pids in
  (match
     strike site mode (fun () -> ignore (Fleet.scrub_now fleet ~pid:victim))
   with
  | `Completed | `Killed | `Refused _ -> ());
  fleet_heal_all fleet pids;
  assert_fleet_clean fleet pids;
  fleet_finish m pids oracle ~plan:[] ~serving_fleet:fleet

(* fault strikes the page-level repair of a seeded flip *)
let repair_probe site mode =
  let _ctxs, m, pids, fleet, oracle = fleet_setup ~n:2 () in
  Fleet.start_scrub fleet;
  fleet_heal_all fleet pids;
  let victim = List.hd pids in
  let rng = Rng.create 1105 in
  (match Machine.bitflip m ~pid:victim rng with
  | Some _ -> ()
  | None -> failp "seeded bitflip found no resident immutable page");
  (match
     strike site mode (fun () -> ignore (Fleet.scrub_now fleet ~pid:victim))
   with
  | `Completed | `Killed | `Refused _ -> ());
  (* whichever way the repair fault went, the retry must converge *)
  fleet_heal_all fleet pids;
  assert_fleet_clean fleet pids;
  fleet_finish m pids oracle ~plan:[] ~serving_fleet:fleet

(* fault strikes the shed path: watermark zero sheds the first dispatch *)
let fleet_shed_probe site mode =
  let shed_now =
    {
      (Balancer.default_config ~workers:2) with
      Balancer.b_shed_high = 0;
      b_shed_low = -1;
    }
  in
  let _ctxs, m, pids, fleet, oracle = fleet_setup ~balancer:shed_now ~n:2 () in
  let (_ : [ `Completed | `Killed | `Refused of string ]) =
    strike site mode (fun () -> ignore (Fleet.request fleet get))
  in
  (* rebuild with sane watermarks for the serving check *)
  let fleet' =
    Fleet.create m ~port:Ltpd.port ~pids ~blocks:(Lazy.force lblocks)
      ~policy:lpolicy
  in
  fleet_finish m pids oracle ~plan:[] ~serving_fleet:fleet'

(* fault strikes the drift monitor's fleet-wide re-enable *)
let fleet_reenable_probe site mode =
  let ctxs, m, pids, fleet, oracle = fleet_setup ~traced:true ~n:4 () in
  let drive () =
    match Fleet.request fleet get with
    | (_ : [ `Reply of int * string | `Refused | `Shed | `Timed_out of int ]) ->
        ()
    | exception e when refusal_of_exn e <> None -> ()
  in
  let config =
    Rollout.
      {
        r_waves = 2;
        r_sup = { Supervisor.default_config with Supervisor.canary_windows = 1 };
      }
  in
  (match Fleet.rollout fleet ~config ~drive () with
  | Rollout.Completed _, _ -> ()
  | o, _ -> failp "setup rollout failed: %s" (Format.asprintf "%a" Rollout.pp_outcome o));
  Fleet.start_drift fleet ~collector:(Workload.collector (List.hd ctxs)) ();
  let (_ : [ `Completed | `Killed | `Refused of string ]) =
    strike site mode (fun () ->
        ignore (Drift.reenable_fleet (Fleet.drift_monitor fleet) ~traps:99))
  in
  fleet_finish m pids oracle ~plan:[] ~serving_fleet:fleet

(* fault strikes the drift monitor's automatic re-cut *)
let fleet_recut_probe site mode =
  let ctxs, m, pids, fleet, oracle = fleet_setup ~traced:true ~n:2 () in
  Fleet.start_drift fleet ~collector:(Workload.collector (List.hd ctxs)) ();
  let (_ : [ `Completed | `Killed | `Refused of string ]) =
    strike site mode (fun () ->
        ignore (Drift.recut_fleet (Fleet.drift_monitor fleet)))
  in
  fleet_finish m pids oracle ~plan:[] ~serving_fleet:fleet

(* fault strikes the dataflow slicing tracer: the hook attach
   (slice.trace) or the final dependency-set fold (slice.compute).
   Slicing is observation-only, so the contract is strict: whichever
   way the fault goes, the guest is untouched (still serving, no hooks
   left behind) and a clean retry produces a non-empty slice *)
let slice_probe site mode =
  let c = Workload.spawn Workload.ltpd in
  Workload.wait_ready c;
  let run_slicer () =
    let sl =
      Slicer.attach c.Workload.m ~pid:c.Workload.pid
        ~wanted_out:(Slicelab.wanted_out_of Workload.ltpd) ()
    in
    ignore (Workload.rpc c get);
    Slicer.detach sl;
    Slicer.slice sl
  in
  (match strike site mode (fun () -> ignore (run_slicer ())) with
  | `Completed | `Killed | `Refused _ -> ());
  assert_tree_serving ~what:"after slice fault" c;
  if run_slicer () = [] then
    failp "clean slicer retry after a %s fault produced an empty slice" site

(* fault strikes the decoded-block code cache: entering the dispatch
   loop (bbcache.dispatch) or evicting blocks over a dirtied code page
   (bbcache.flush). The cache is an execution accelerator only, so the
   contract is strict: a Fail degrades to the single-step interpreter
   (same replies, never a stale block), a Delay just slows the quantum,
   and after any outcome the fleet keeps serving and stays XOR-clean *)
let bbcache_probe site mode =
  let _ctxs, m, pids, fleet, oracle = fleet_setup ~n:2 () in
  let bb = Bbcache.enable m in
  (match Fleet.request fleet get with
  | `Reply (_, resp) when status resp = "200" -> ()
  | _ -> failp "cache warm-up request failed");
  (* touching a text byte (same value back) marks the page dirty, so the
     very next dispatch must reach the flush path *)
  let dirty_text () =
    List.iter
      (fun pid ->
        let p = Machine.proc_exn m pid in
        let b = List.hd oracle.Oracle.oc_blocks in
        let addr =
          Int64.add oracle.Oracle.oc_base (Int64.of_int b.Covgraph.b_off)
        in
        Mem.poke8 p.Proc.mem addr (Mem.peek8 p.Proc.mem addr))
      pids
  in
  let (_ : [ `Completed | `Killed | `Refused of string ]) =
    strike site mode (fun () ->
        if site = "bbcache.flush" then dirty_text ();
        match Fleet.request fleet get with
        | `Reply (_, resp) when status resp = "200" -> ()
        | _ -> failp "request failed under a %s fault" site)
  in
  (* whichever way the fault went — cached, degraded or freshly
     recovered — the very next request must still serve *)
  (match Fleet.request fleet get with
  | `Reply (_, resp) when status resp = "200" -> ()
  | _ -> failp "request failed after the %s fault" site);
  Bbcache.disable bb;
  fleet_finish m pids oracle ~plan:[] ~serving_fleet:fleet

(* every registered site maps to the scenario that provably reaches it;
   a site without a driver fails the matrix rather than shrinking it *)
let probe_driver (site : string) : Fault.mode -> unit =
  match site with
  | "criu.checkpoint" | "criu.save" | "criu.load" | "rewrite.patch"
  | "inject.lib" | "inject.policy" | "restore.process" | "journal.lock"
  | "journal.append" ->
      tree_probe site
  | "rewrite.unmap" -> tree_probe ~method_:`Unmap_pages site
  | "restore.tcp_repair" -> tree_probe ~tcp:true site
  | "restore.respawn" -> respawn_probe site
  | "supervisor.promote" -> promote_probe site
  | "supervisor.reenable" -> reenable_probe site
  | "crit.encode" | "crit.decode" -> crit_probe site
  | "recover.replay" -> recover_probe site
  | "fleet.wave" | "fleet.manifest" -> fleet_rollout_probe site
  | "fleet.reenable" -> fleet_reenable_probe site
  | "fleet.recut" -> fleet_recut_probe site
  | "balancer.dispatch" | "balancer.health" | "net.accept_queue"
  | "net.serve" ->
      fleet_request_probe site
  | "fleet.shed" -> fleet_shed_probe site
  | "scrub.page" -> scrub_probe site
  | "integrity.repair" -> repair_probe site
  | "slice.trace" | "slice.compute" -> slice_probe site
  | "bbcache.dispatch" | "bbcache.flush" -> bbcache_probe site
  | s -> fun _ -> failp "site %s has no chaos probe — extend Chaos.probe_driver" s

type probe = {
  p_site : string;
  p_mode : Fault.mode;
  p_ok : bool;
  p_detail : string;  (** empty when ok *)
}

(** The directed sweep: every registered site in every applicable mode.
    [sites] defaults to the full registry. *)
let coverage_matrix ?(sites = List.map fst Fault.known_sites) () : probe list =
  List.concat_map
    (fun site ->
      List.map
        (fun mode ->
          Fault.reset ();
          match probe_driver site mode with
          | () -> { p_site = site; p_mode = mode; p_ok = true; p_detail = "" }
          | exception Probe_failure msg ->
              { p_site = site; p_mode = mode; p_ok = false; p_detail = msg })
        (Fault.applicable_modes site))
    sites
