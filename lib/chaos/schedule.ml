(** Chaos schedules: seeded multi-fault plans (DESIGN.md §6c).

    A schedule is a list of fault events — (site, mode, trigger) — plus
    the seed every random draw of the run derives from. Two triggers:

    - [Nth n]: fire on the [n]-th hit of the site counted from the
      moment the executor arms the schedule (nth-occurrence);
    - [Window (t0, t1)]: armed while the run-relative virtual clock is
      inside [t0, t1) — the executor opens and closes the window between
      workload slices, and the fault strikes at most once inside it.

    Every event fires at most once per run, and no two events of one
    schedule share a site (the fault registry holds one armed entry per
    site). Because the generator, the fault scheduler and the workload
    all draw from {!Rng} seeded by [sc_seed], a schedule replays
    bit-for-bit from the seed alone — the replay file ({!to_replay}) is
    just the seed plus the event list, for humans and for re-running a
    shrunk repro. *)

type trigger =
  | Nth of int  (** fire exactly on the [n]-th hit after arming *)
  | Window of int * int
      (** armed while run-relative clock is in [\[t0, t1)], cycles *)

type event = { ev_site : string; ev_mode : Fault.mode; ev_trigger : trigger }

type t = { sc_seed : int; sc_events : event list }

let pp_trigger ppf = function
  | Nth n -> Format.fprintf ppf "nth %d" n
  | Window (t0, t1) -> Format.fprintf ppf "window %d %d" t0 t1

let pp_event ppf (e : event) =
  Format.fprintf ppf "%s %s %a" e.ev_site
    (Fault.mode_to_string e.ev_mode)
    pp_trigger e.ev_trigger

let pp ppf (s : t) =
  Format.fprintf ppf "seed=%d [%s]" s.sc_seed
    (String.concat "; "
       (List.map (Format.asprintf "%a" pp_event) s.sc_events))

(* sites the fleet executor's workload actually reaches: the cut path of
   every rollout wave, the dispatch/serve path of every request, the
   manifest, and recovery replay (faults still armed can strike the
   recovery pass — that is the multi-fault point). Sites needing a
   special driver (crit round trips, unmap-pages cuts, drift monitors,
   forced shedding) are covered by the directed matrix instead. *)
let fleet_sites =
  [
    "criu.checkpoint";
    "criu.save";
    "criu.load";
    "rewrite.patch";
    "inject.lib";
    "inject.policy";
    "restore.process";
    "restore.tcp_repair";
    "journal.lock";
    "journal.append";
    "recover.replay";
    "fleet.wave";
    "fleet.manifest";
    "balancer.dispatch";
    "balancer.health";
    "net.accept_queue";
    "net.serve";
    "scrub.page";
  ]

(* a generated delay is big enough to dominate a request's round trip —
   a straggler, not background jitter *)
let gen_mode rng site =
  match Rng.choose rng (Fault.applicable_modes site) with
  | Fault.Delay _ -> Fault.Delay (20_000 + Rng.int rng 480_000)
  | m -> m

(* windows must be wide relative to the executor's tick granularity
   (one fleet request ~19k cycles) or the clock steps over them *)
let gen_trigger rng ~horizon =
  if Rng.bool rng then Nth (1 + Rng.int rng 3)
  else begin
    let t0 = Rng.int rng horizon in
    let width = (horizon / 8) + Rng.int rng (horizon / 4) in
    Window (t0, t0 + width)
  end

(** Generate a multi-fault schedule: 1..[max_events] events over
    distinct [sites], modes drawn from {!Fault.applicable_modes},
    triggers split between nth-occurrence and virtual-time windows
    inside [\[0, horizon)] run-relative cycles. *)
let generate ?(sites = fleet_sites) ?(max_events = 4)
    ?(horizon = 250_000) ~seed () : t =
  let rng = Rng.create seed in
  let n = min (1 + Rng.int rng max_events) (List.length sites) in
  let rec pick k remaining acc =
    if k = 0 || remaining = [] then List.rev acc
    else begin
      let s = Rng.choose rng remaining in
      pick (k - 1) (List.filter (fun x -> x <> s) remaining) (s :: acc)
    end
  in
  let events =
    List.map
      (fun site ->
        {
          ev_site = site;
          ev_mode = gen_mode rng site;
          ev_trigger = gen_trigger rng ~horizon;
        })
      (pick n sites [])
  in
  { sc_seed = seed; sc_events = events }

(** {2 Replay files}

    One event per line, order preserved; the whole run state is the seed
    plus this list, so the file reproduces a failure bit-for-bit. *)

let mode_of_string (s : string) : Fault.mode =
  match s with
  | "fail" -> Fault.Fail
  | "kill" -> Fault.Kill
  | "corrupt" -> Fault.Corrupt
  | "enospc" -> Fault.Enospc
  | "eio" -> Fault.Eio
  | "bitflip" -> Fault.Bitflip
  | _ ->
      let pfx = "delay=" in
      if String.length s > String.length pfx
         && String.sub s 0 (String.length pfx) = pfx
      then
        match
          int_of_string_opt
            (String.sub s (String.length pfx)
               (String.length s - String.length pfx))
        with
        | Some n when n > 0 -> Fault.Delay n
        | _ -> invalid_arg (Printf.sprintf "Schedule: bad delay %S" s)
      else invalid_arg (Printf.sprintf "Schedule: unknown mode %S" s)

let to_replay (s : t) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b "chaos-replay v1\n";
  Buffer.add_string b (Printf.sprintf "seed %d\n" s.sc_seed);
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "event %s %s %s\n" e.ev_site
           (Fault.mode_to_string e.ev_mode)
           (match e.ev_trigger with
           | Nth n -> Printf.sprintf "nth %d" n
           | Window (t0, t1) -> Printf.sprintf "window %d %d" t0 t1)))
    s.sc_events;
  Buffer.contents b

exception
  Unsupported_version of {
    uv_found : string;  (** the version token in the header, e.g. "v2" *)
    uv_supported : string;
  }
(** The file is a well-formed chaos-replay file from a {e future} format
    version. Raised instead of misparsing: a v2 file could carry fields
    whose silent loss would replay a {e different} schedule than the one
    that failed. The CLI maps this to a distinct exit code. *)

let () =
  Printexc.register_printer (function
    | Unsupported_version { uv_found; uv_supported } ->
        Some
          (Printf.sprintf
             "unsupported chaos-replay version %s (this build supports %s)"
             uv_found uv_supported)
    | _ -> None)

let of_replay (text : string) : t =
  let bad fmt = Printf.ksprintf invalid_arg fmt in
  let num what v =
    match int_of_string_opt v with
    | Some n -> n
    | None -> bad "Schedule.of_replay: bad %s %S" what v
  in
  let lines =
    List.filter
      (fun l -> l <> "" && l.[0] <> '#')
      (String.split_on_char '\n' text)
  in
  match lines with
  | "chaos-replay v1" :: rest ->
      let seed = ref None and events = ref [] in
      List.iter
        (fun line ->
          match
            List.filter (fun w -> w <> "") (String.split_on_char ' ' line)
          with
          | [ "seed"; v ] -> seed := Some (num "seed" v)
          | [ "event"; site; mode; "nth"; n ] ->
              events :=
                {
                  ev_site = site;
                  ev_mode = mode_of_string mode;
                  ev_trigger = Nth (num "nth" n);
                }
                :: !events
          | [ "event"; site; mode; "window"; t0; t1 ] ->
              events :=
                {
                  ev_site = site;
                  ev_mode = mode_of_string mode;
                  ev_trigger = Window (num "t0" t0, num "t1" t1);
                }
                :: !events
          | _ -> bad "Schedule.of_replay: bad line %S" line)
        rest;
      (match !seed with
      | Some sc_seed -> { sc_seed; sc_events = List.rev !events }
      | None -> bad "Schedule.of_replay: no seed line")
  | header :: _
    when String.length header > 13 && String.sub header 0 13 = "chaos-replay " ->
      raise
        (Unsupported_version
           {
             uv_found = String.sub header 13 (String.length header - 13);
             uv_supported = "v1";
           })
  | _ -> bad "Schedule.of_replay: not a chaos-replay v1 file"
