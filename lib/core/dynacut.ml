(** The DynaCut orchestrator: freeze → checkpoint → rewrite → restore,
    with a per-stage timing breakdown matching Figure 6's legend
    (checkpoint / disable code w/ int3 / insert sighandler / restore).

    A {!session} wraps one target process tree. [cut] disables a block
    list under a policy; [reenable] restores a previous cut's journal.
    All edits go through the static images in the machine's tmpfs — the
    live process is only ever frozen, reaped, and re-created, never
    patched in place (§3.2.1). *)

type policy = {
  method_ : [ `First_byte | `Wipe | `Unmap_pages ];
  on_trap :
    [ `Kill  (** no handler: default SIGTRAP action terminates (like RAZOR) *)
    | `Terminate  (** handler calls exit(13) *)
    | `Redirect of string
      (** handler redirects saved rip to this (exported) symbol — the
          application's default error path, e.g. the 403 responder *)
    | `Verify  (** handler restores the original byte and logs (§3.2.3) *)
    ];
}

let block_features = { method_ = `First_byte; on_trap = `Kill }

type timings = {
  t_checkpoint : float;
  t_disable : float;
  t_handler : float;
  t_restore : float;
}

let total_time t = t.t_checkpoint +. t.t_disable +. t.t_handler +. t.t_restore

let pp_timings fmt t =
  Format.fprintf fmt
    "checkpoint %.4fs + disable %.4fs + sighandler %.4fs + restore %.4fs = %.4fs"
    t.t_checkpoint t.t_disable t.t_handler t.t_restore (total_time t)

type session = {
  machine : Machine.t;
  root_pid : int;
  handler_lib : Self.t;
  tmpfs : string;  (** tmpfs directory for the images (§3.3) *)
  journal : Journal.t option;
      (** the crash-consistency journal (DESIGN.md §5d); [None] only
          when the session was created with [~journal:false] *)
  epoch : int;  (** this controller's fencing token *)
  mutable next_txid : int;
  mutable lib_bases : (int * int64) list;  (** pid -> injected handler base *)
  mutable cut_count : int;
  mutable table_mode : int64;  (** current handler mode for the whole table *)
  mutable table : (int * (int64 * int64) list) list;
      (** pid -> accumulated (trap addr, payload) entries across stacked
          cuts; re-enables remove their entries instead of clearing *)
  mutable deltas : (int * (int64 * bytes) list) list;
      (** pid -> the byte deltas the rewriter committed, published at
          transaction commit: for every journaled [Bytes_patch] vaddr,
          the bytes now in the working image there. The integrity
          scrubber re-applies these over pristine pages when repairing a
          silently diverged page (DESIGN.md §6d). *)
}

exception Dynacut_error of string

let create ?(journal = true) (machine : Machine.t) ~(root_pid : int) : session =
  (* the handler library is built against the libc the target linked *)
  let libc =
    match Vfs.find_self machine.Machine.fs "libc.so" with
    | Some l -> l
    | None -> raise (Dynacut_error "libc.so not present in target filesystem")
  in
  let tmpfs = Printf.sprintf "/tmpfs/dynacut-%d" root_pid in
  let journal =
    if journal then Some (Journal.attach machine.Machine.fs ~dir:tmpfs) else None
  in
  (* one past whatever epoch the tree last saw, so a fresh controller
     outranks any stale lock a dead one left behind *)
  let epoch =
    match journal with Some j -> Journal.lock_epoch j + 1 | None -> 1
  in
  (* pre-register the pipeline span set so the exposed stage breakdown is
     stable from the first dump, even before any stage has run *)
  List.iter Obs.register_span
    [
      "checkpoint"; "crit"; "rewrite"; "inject"; "restore"; "tcp_repair";
      "journal.lock"; "journal.append"; "recover.replay";
    ];
  {
    machine;
    root_pid;
    handler_lib = Handler.build ~libc ();
    tmpfs;
    journal;
    epoch;
    next_txid = 1;
    lib_bases = [];
    cut_count = 0;
    table_mode = Handler.mode_terminate;
    table = [];
    deltas = [];
  }

let tree_pids (s : session) : int list =
  let rec descendants pid =
    let kids =
      List.filter
        (fun (q : Proc.t) -> q.Proc.parent = pid && Proc.is_live q)
        (Machine.all_procs s.machine)
    in
    pid :: List.concat_map (fun (q : Proc.t) -> descendants q.Proc.pid) kids
  in
  descendants s.root_pid

let image_path s pid = Printf.sprintf "%s/dump-%d.img" s.tmpfs pid
let pristine_path s pid = Printf.sprintf "%s/pristine-%d.img" s.tmpfs pid

let load_image s pid : Images.t =
  try Restore.load_from_tmpfs s.machine ~path:(image_path s pid)
  with Restore.Restore_error _ ->
    raise (Dynacut_error (Printf.sprintf "no image for pid %d" pid))

let store_image s (img : Images.t) : unit =
  ignore (Checkpoint.save_to_tmpfs s.machine ~dir:s.tmpfs img)

(* the pristine copy is the transaction's rollback anchor; it is written
   outside the criu.save fault site so an injected serialization fault
   cannot take the safety net with it *)
let save_pristine s (img : Images.t) : unit =
  Vfs.add s.machine.Machine.fs
    (pristine_path s img.Images.core.Images.c_pid)
    (Validate.encode_sealed img)

(** Drop a pid's session bookkeeping (policy-table entries, injected-lib
    base). Needed when a process is re-created from its {e pristine}
    image outside the transaction engine — the handler library is not in
    that image, so stale entries would poison the next cut. *)
let forget_pid (s : session) ~(pid : int) : unit =
  s.table <- List.remove_assoc pid s.table;
  s.lib_bases <- List.remove_assoc pid s.lib_bases;
  s.deltas <- List.remove_assoc pid s.deltas

let load_pristine s pid : Images.t =
  match Vfs.find s.machine.Machine.fs (pristine_path s pid) with
  | Some blob -> Validate.decode_sealed blob
  | None -> raise (Dynacut_error (Printf.sprintf "no pristine image for pid %d" pid))

(* put the working images back to their pre-edit state (retries must not
   see a half-patched image: disable_first_byte would journal 0xCC as the
   original byte) *)
let reset_working s pids =
  List.iter
    (fun pid ->
      match Vfs.find s.machine.Machine.fs (pristine_path s pid) with
      | Some blob -> Vfs.add s.machine.Machine.fs (image_path s pid) blob
      | None -> ())
    pids

(* stage 1: freeze the tree, then checkpoint every process into tmpfs,
   keeping a pristine copy of each image for rollback. Split so the
   journal can record [Frozen] between the two halves. *)
let stage_freeze s pids = List.iter (fun pid -> Machine.freeze s.machine ~pid) pids

let stage_dump s pids =
  List.iter
    (fun pid ->
      let img = Checkpoint.dump s.machine ~pid ~mode:Checkpoint.Dynacut () in
      save_pristine s img;
      store_image s img)
    pids

let stage_checkpoint s pids =
  stage_freeze s pids;
  stage_dump s pids

(* stage 2: apply the block-disabling edits; returns journals *)
let stage_disable s pids ~(blocks : Covgraph.block list) ~method_ :
    Rewriter.journal list =
  List.map
    (fun pid ->
      let img = load_image s pid in
      let patches, img =
        match method_ with
        | `First_byte -> (Rewriter.disable_first_byte img blocks, img)
        | `Wipe -> (Rewriter.wipe_blocks img blocks, img)
        | `Unmap_pages ->
            (* unmap whole pages; partially-covered pages are wiped *)
            let unmaps, img = Rewriter.unmap_block_pages img blocks in
            let still_mapped =
              List.filter
                (fun b ->
                  match Images.find_vma img (Rewriter.block_vaddr img b) with
                  | Some _ -> true
                  | None -> false)
                blocks
            in
            (unmaps @ Rewriter.wipe_blocks img still_mapped, img)
      in
      store_image s img;
      { Rewriter.j_pid = pid; j_patches = patches })
    pids

(* stage 3: inject (or re-use) the handler library, write the policy
   table, register the SIGTRAP sigaction *)
let stage_handler s pids ~(blocks : Covgraph.block list) ~on_trap
    ~(journals : Rewriter.journal list) =
  match on_trap with
  | `Kill -> ()
  | (`Terminate | `Redirect _ | `Verify) as trap ->
      let libc =
        match Vfs.find_self s.machine.Machine.fs "libc.so" with
        | Some l -> l
        | None -> raise (Dynacut_error "libc.so vanished")
      in
      List.iter
        (fun pid ->
          let img = load_image s pid in
          let libc_base =
            match Rewriter.module_base img "libc.so" with
            | Some b -> b
            | None -> raise (Dynacut_error "target does not map libc.so")
          in
          let img, base =
            match Rewriter.module_base img s.handler_lib.Self.name with
            | Some base ->
                (* already injected by an earlier cut — but still (re)record
                   the base: a pid respawned from an image with the lib
                   resident has no [lib_bases] entry ([forget_pid]), and
                   without one its trap counter is invisible to
                   [handler_hits] *)
                s.lib_bases <- (pid, base) :: List.remove_assoc pid s.lib_bases;
                (img, base)
            | None ->
                let img, base =
                  Inject.inject img ~lib:s.handler_lib ~deps:[ (libc, libc_base) ] ()
                in
                s.lib_bases <- (pid, base) :: List.remove_assoc pid s.lib_bases;
                (img, base)
          in
          let journal =
            List.find (fun (j : Rewriter.journal) -> j.Rewriter.j_pid = pid) journals
          in
          let exe =
            match Vfs.find_self s.machine.Machine.fs img.Images.core.Images.c_exe with
            | Some e -> e
            | None -> raise (Dynacut_error "target executable not in filesystem")
          in
          let mode, new_entries =
            match trap with
            | `Terminate -> (Handler.mode_terminate, [])
            | `Redirect sym ->
                let target =
                  match Self.find_symbol exe sym with
                  | Some sm -> (
                      match Rewriter.module_base img exe.Self.name with
                      | Some mb -> Int64.add mb (Int64.of_int sm.Self.sym_off)
                      | None -> raise (Dynacut_error "exe module not mapped"))
                  | None ->
                      raise
                        (Dynacut_error
                           (Printf.sprintf "redirect target %s not found in %s" sym
                              exe.Self.name))
                in
                ( Handler.mode_redirect,
                  List.map (fun b -> (Rewriter.block_vaddr img b, target)) blocks )
            | `Verify ->
                ( Handler.mode_verify,
                  List.filter_map
                    (function
                      | Rewriter.Bytes_patch { p_vaddr; p_orig } when Bytes.length p_orig = 1
                        ->
                          Some (p_vaddr, Int64.of_int (Char.code (Bytes.get p_orig 0)))
                      | _ -> None)
                    journal.Rewriter.j_patches )
          in
          (* stacked cuts accumulate entries; the mode is table-global, so
             redirect and verify payloads must not be mixed *)
          let prev = Option.value ~default:[] (List.assoc_opt pid s.table) in
          if prev <> [] && mode <> s.table_mode then
            raise
              (Dynacut_error
                 "cannot stack cuts with different trap modes (redirect vs \
                  verify); re-enable the earlier cut first");
          let merged =
            List.fold_left
              (fun acc (addr, payload) -> (addr, payload) :: List.remove_assoc addr acc)
              prev new_entries
          in
          s.table <- (pid, merged) :: List.remove_assoc pid s.table;
          s.table_mode <- mode;
          Inject.write_policy img ~lib:s.handler_lib ~base ~mode ~entries:merged;
          let img =
            Rewriter.set_sigaction img ~signum:Abi.sigtrap
              ~handler:(Inject.lib_sym s.handler_lib ~base Handler.sym_handler)
              ~restorer:(Inject.lib_sym s.handler_lib ~base Handler.sym_restorer)
          in
          store_image s img)
        pids

(* stage 4: replace the live processes with the rewritten images *)
let stage_restore s pids =
  List.iter
    (fun pid ->
      Machine.reap s.machine ~pid;
      let p = Restore.restore s.machine (load_image s pid) in
      p.Proc.frozen <- false)
    pids

(** Under the redirect policy, the saved instruction pointer is rewritten
    by a constant target, so the trap site and the error path must share
    a stack frame: "we require that the entries of the default error
    handler and unwanted code features reside within the same function"
    (§3.2.2). Keep only the feature blocks inside the redirect target's
    function — the dispatcher edges. Blocking those entry blocks is
    sufficient to disable the feature; deeper feature code stays mapped
    (use [`Wipe] + [`Kill] when that residue matters). *)
let redirect_filter (s : session) ~(sym : string) (blocks : Covgraph.block list) :
    Covgraph.block list =
  let root = Machine.proc_exn s.machine s.root_pid in
  match Vfs.find_self s.machine.Machine.fs root.Proc.exe_path with
  | None -> blocks
  | Some exe -> (
      match Self.find_symbol exe sym with
      | None -> blocks (* resolution fails loudly later, in stage_handler *)
      | Some target ->
          let bounds = Funcbounds.of_self exe in
          List.filter
            (fun (b : Covgraph.block) ->
              b.Covgraph.b_module = exe.Self.name
              && Funcbounds.same_function bounds b.Covgraph.b_off target.Self.sym_off)
            blocks)

(* the image edits of a re-enable: original bytes back, pages remapped,
   the journal's entries dropped from the policy table *)
let reenable_edits s pids (journals : Rewriter.journal list) =
  List.iter
    (fun (j : Rewriter.journal) ->
      match List.find_opt (fun pid -> pid = j.Rewriter.j_pid) pids with
      | None -> ()
      | Some pid ->
          let img = load_image s pid in
          Rewriter.restore_bytes img j.Rewriter.j_patches;
          let img = Rewriter.remap img j.Rewriter.j_patches in
          (* drop only this journal's entries from the policy table;
             entries from other (still active) cuts remain *)
          let restored_addrs =
            List.filter_map
              (function
                | Rewriter.Bytes_patch { p_vaddr; _ } -> Some p_vaddr
                | Rewriter.Unmap_patch _ -> None)
              j.Rewriter.j_patches
          in
          let remaining =
            List.filter
              (fun (addr, _) -> not (List.mem addr restored_addrs))
              (Option.value ~default:[] (List.assoc_opt pid s.table))
          in
          s.table <- (pid, remaining) :: List.remove_assoc pid s.table;
          (match
             ( List.assoc_opt pid s.lib_bases,
               Rewriter.module_base img s.handler_lib.Self.name )
           with
          | Some base, Some _ ->
              let mode =
                if remaining = [] then Handler.mode_terminate else s.table_mode
              in
              Inject.write_policy img ~lib:s.handler_lib ~base ~mode
                ~entries:remaining
          | _ -> ());
          store_image s img)
    journals

(* ---------- the transaction ---------- *)

(* A cut is two phases. Phase A (checkpoint + every image edit) works on
   static images only: the live tree is frozen but untouched, so a
   failure there needs no process surgery — reset the working images from
   the pristine copies, restore the session bookkeeping, thaw. Phase B
   (restore) replaces processes one by one; a failure there re-restores
   the already-replaced pids from their pristine images. Either way the
   invariant holds: the cut is fully applied, or the tree is exactly as
   it was. *)

type rollback = { rb_stage : string; rb_error : string }

type outcome = [ `Applied | `Degraded | `Rolled_back of rollback ]

type cut_result = {
  r_journals : Rewriter.journal list;
  r_timings : timings;
  r_outcome : outcome;
  r_retries : int;  (** transient-fault retries spent *)
  r_backoff_cycles : int;  (** virtual cycles charged as retry backoff *)
}

let pp_outcome fmt (o : outcome) =
  match o with
  | `Applied -> Format.pp_print_string fmt "applied"
  | `Degraded -> Format.pp_print_string fmt "applied degraded (first-byte fallback)"
  | `Rolled_back { rb_stage; rb_error } ->
      Format.fprintf fmt "rolled back at %s: %s" rb_stage rb_error

exception Stage_failed of string * exn

(* the pipeline's failure domain; anything outside it is a host bug and
   propagates untouched *)
let guard stage f =
  try f ()
  with
  | ( Fault.Injected _ | Fault.Storage_error _ | Dynacut_error _
    | Rewriter.Rewrite_error _ | Inject.Inject_error _
    | Restore.Restore_error _ | Validate.Validate_error _
    | Images.Format_error _ | Invalid_argument _ | Not_found ) as e
  ->
    raise (Stage_failed (stage, e))

let describe_exn = function
  | Fault.Injected { site; _ } -> Printf.sprintf "injected fault at %s" site
  | Fault.Storage_error { site; kind } ->
      Printf.sprintf "storage error (%s) at %s" (Fault.storage_kind_to_string kind) site
  | Dynacut_error e -> e
  | Rewriter.Rewrite_error e -> "rewrite: " ^ e
  | Inject.Inject_error e -> "inject: " ^ e
  | Restore.Restore_error e -> "restore: " ^ e
  | Validate.Validate_error e -> "validate: " ^ e
  | Images.Format_error e -> "image format: " ^ e
  | e -> Printexc.to_string e

let snapshot_state s = (s.lib_bases, s.cut_count, s.table_mode, s.table)

let restore_state s (lib_bases, cut_count, table_mode, table) =
  s.lib_bases <- lib_bases;
  s.cut_count <- cut_count;
  s.table_mode <- table_mode;
  s.table <- table

let thaw_all s pids = List.iter (fun pid -> Machine.thaw s.machine ~pid) pids

(* ---------- journal wiring (DESIGN.md §5d) ---------- *)

let jrnl_append s (r : Journal.record) =
  match s.journal with None -> () | Some j -> Journal.append j ~epoch:s.epoch r

(* Open the transaction in the journal: refuse a tree whose journal
   still holds an unfinished transaction or respawn ([Journal.Busy] —
   run [recover] first), take the lock ([Journal.Fenced] when a newer
   epoch holds it), and log the intent. Busy/Fenced are deliberately
   outside [guard]'s failure domain: they mean the tree is not ours to
   roll back. *)
let jrnl_open s ~txid ~op ~pids =
  match s.journal with
  | None -> ()
  | Some j ->
      let records, _torn = Journal.read j in
      let sum = Journal.summarize records in
      if not (Journal.quiescent sum) then begin
        let open_txid =
          match sum.Journal.s_tx with
          | Some t when not t.Journal.tx_closed -> t.Journal.tx_id
          | _ -> 0
        in
        raise (Journal.Busy { txid = open_txid })
      end;
      Journal.acquire j ~epoch:s.epoch;
      (* a quiescent leftover (death between Commit and cleanup, later
         recovered) is stale history — drop it before the new tx; only
         now that the fencing check passed is it ours to drop *)
      if records <> [] then Journal.clear j;
      Journal.append j ~epoch:s.epoch (Journal.Begin { txid; op; pids })

let jrnl_finish s = match s.journal with None -> () | Some j -> Journal.finish j

(* Rollback epilogue: the tree is back to original — log [Abort] and
   drop journal + lock, but only while we still own the lock (a fenced
   controller must not touch files a newer one owns). Suppressed so an
   armed chaos fault cannot re-fire inside an already-successful
   rollback; a kill-mode fault still strikes — that is the point. *)
let jrnl_abort s ~txid =
  match s.journal with
  | None -> ()
  | Some j ->
      Fault.suppressed (fun () ->
          if Journal.lock_epoch j = s.epoch then begin
            Journal.append j ~epoch:s.epoch (Journal.Abort txid);
            Journal.finish j
          end)

let default_max_retries = 2

let is_prefix pre str =
  String.length str >= String.length pre
  && String.sub str 0 (String.length pre) = pre

(* a failure is worth retrying if the injected fault was flagged
   transient, or its site falls in a caller-configured retry class
   (prefix match, e.g. "criu." or "restore.tcp_repair") *)
let is_transient ~retry_classes = function
  | Stage_failed (_, Fault.Injected { site; transient }) ->
      transient || List.exists (fun c -> is_prefix c site) retry_classes
  | _ -> false

(* capped exponential backoff between retries, charged to the virtual
   clock — the tree is frozen, so only time moves *)
let do_backoff s ~attempt =
  let cycles = min (1 lsl attempt) 64 * 1_000 in
  s.machine.Machine.clock <- Int64.add s.machine.Machine.clock (Int64.of_int cycles);
  cycles

(* Phase B: replace the live processes with the rewritten images. On any
   failure, every pid is reverted to its pristine image — the already-
   replaced ones (and the half-restored victim) re-restored, the not-yet-
   touched ones merely thawed — under fault suppression so the unwind
   cannot itself be injected. The [Replaced] intent is journaled BEFORE
   each reap (write-ahead): a pid may be recorded and still original,
   never replaced and unrecorded. The [Commit] append rides inside the
   same failure domain — if it cannot be logged, the cut is not
   considered applied and the unwind reverts everything. *)
let commit_restore s ~txid pids =
  let replaced = ref [] in
  try
    List.iter
      (fun pid ->
        guard "restore" (fun () ->
            jrnl_append s (Journal.Replaced { txid; pid });
            Machine.reap s.machine ~pid;
            let p = Restore.restore s.machine (load_image s pid) in
            p.Proc.frozen <- false;
            replaced := pid :: !replaced))
      pids;
    guard "restore" (fun () -> jrnl_append s (Journal.Commit txid))
  with Stage_failed _ as failure ->
    Fault.suppressed (fun () ->
        List.iter
          (fun pid ->
            let untouched =
              (not (List.mem pid !replaced))
              &&
              match Machine.proc s.machine pid with
              | Some p -> Proc.is_live p
              | None -> false
            in
            if not untouched then begin
              Machine.reap s.machine ~pid;
              let p = Restore.restore s.machine (load_pristine s pid) in
              p.Proc.frozen <- false
            end)
          pids);
    raise failure

(* the engine shared by cut and re-enable. [attempts] is the edit phase:
   the primary method first, then any degraded fallbacks; each returns
   (journals, t_disable, t_handler) and works purely on the tmpfs
   images. *)
let run_transaction s ~op ~pids ~max_retries ~retry_classes
    ~(attempts : (unit -> Rewriter.journal list * float * float) list) :
    cut_result =
  let saved = snapshot_state s in
  let txid = s.next_txid in
  s.next_txid <- txid + 1;
  let retries = ref 0 and backoff_total = ref 0 in
  let zero = { t_checkpoint = 0.; t_disable = 0.; t_handler = 0.; t_restore = 0. } in
  let op_str = match op with Journal.Cut -> "cut" | Journal.Reenable -> "reenable" in
  let finish_rollback stage e t =
    restore_state s saved;
    reset_working s pids;
    thaw_all s pids;
    jrnl_abort s ~txid;
    Obs.incr (Obs.counter ~labels:[ ("op", op_str) ] "dynacut.rollbacks");
    Obs.event ~kind:"dynacut"
      (Printf.sprintf "tx=%d %s rolled back at %s" txid op_str stage);
    {
      r_journals = [];
      r_timings = t;
      r_outcome = `Rolled_back { rb_stage = stage; rb_error = describe_exn e };
      r_retries = !retries;
      r_backoff_cycles = !backoff_total;
    }
  in
  (* retry [step] while its failure is transient and retry budget
     remains; both the checkpoint and the commit are individually
     retryable — checkpointing is idempotent, and the commit's own
     unwind leaves the tree restartable from the working images *)
  let rec with_retries step =
    match step () with
    | r -> `Ok r
    | exception (Stage_failed (stage, e) as failure) ->
        if is_transient ~retry_classes failure && !retries < max_retries then begin
          incr retries;
          Obs.incr (Obs.counter "dynacut.retries");
          backoff_total := !backoff_total + do_backoff s ~attempt:!retries;
          with_retries step
        end
        else `Failed (stage, e)
  in
  (* the journal open is NOT retried: a second [Begin] would read as a
     new transaction. Its failure rolls back trivially — nothing
     happened yet. Freeze/dump re-runs are idempotent, and re-appended
     progress records are deduplicated by the summarizer. *)
  match
    match guard "journal" (fun () -> jrnl_open s ~txid ~op ~pids) with
    | () ->
        with_retries (fun () ->
            Obs.timed_span "checkpoint" (fun () ->
                guard "checkpoint" (fun () -> stage_freeze s pids);
                guard "journal" (fun () -> jrnl_append s (Journal.Frozen txid));
                guard "checkpoint" (fun () -> stage_dump s pids);
                guard "journal" (fun () ->
                    jrnl_append s (Journal.Images_saved txid))))
    | exception Stage_failed (stage, e) -> `Failed (stage, e)
  with
  | `Failed (stage, e) -> finish_rollback stage e zero
  | `Ok ((), t_checkpoint) -> (
      let degraded = ref false in
      let reset_attempt () =
        restore_state s saved;
        reset_working s pids
      in
      let rec edit = function
        | [] -> assert false
        | att :: rest -> (
            match att () with
            | r -> `Ok r
            | exception (Stage_failed (stage, e) as failure) ->
                reset_attempt ();
                if is_transient ~retry_classes failure && !retries < max_retries
                then begin
                  incr retries;
                  Obs.incr (Obs.counter "dynacut.retries");
                  backoff_total := !backoff_total + do_backoff s ~attempt:!retries;
                  edit (att :: rest)
                end
                else if rest <> [] then begin
                  degraded := true;
                  edit rest
                end
                else `Failed (stage, e))
      in
      match edit attempts with
      | `Failed (stage, e) -> finish_rollback stage e { zero with t_checkpoint }
      | `Ok (journals, t_disable, t_handler) -> (
          match
            match
              guard "journal" (fun () -> jrnl_append s (Journal.Rewritten txid))
            with
            | () ->
                with_retries (fun () ->
                    Obs.timed_span "restore" (fun () ->
                        commit_restore s ~txid pids))
            | exception Stage_failed (stage, e) -> `Failed (stage, e)
          with
          | `Failed (stage, e) ->
              finish_rollback stage e
                { t_checkpoint; t_disable; t_handler; t_restore = 0. }
          | `Ok ((), t_restore) ->
              (* [Commit] is on storage (last act of [commit_restore]);
                 the journal has served its purpose *)
              jrnl_finish s;
              Obs.incr (Obs.counter ~labels:[ ("op", op_str) ] "dynacut.commits");
              if !degraded then Obs.incr (Obs.counter "dynacut.degraded");
              Obs.event ~kind:"dynacut"
                (Printf.sprintf "tx=%d %s committed%s (%d retries)" txid op_str
                   (if !degraded then " degraded" else "")
                   !retries);
              {
                r_journals = journals;
                r_timings = { t_checkpoint; t_disable; t_handler; t_restore };
                r_outcome = (if !degraded then `Degraded else `Applied);
                r_retries = !retries;
                r_backoff_cycles = !backoff_total;
              }))

(* Publish the forward deltas a committed transaction left in the working
   images: for every journaled [Bytes_patch] vaddr — plus any vaddr a
   previous cut already tracks — the bytes now present in the working
   image there. Re-enables contribute no new vaddrs but refresh tracked
   ones back to their pristine values, so re-applying a refreshed delta
   over a pristine page is the identity. Best-effort bookkeeping: a pid
   whose working image cannot be decoded keeps its previous entries (the
   scrubber has other repair sources). Read outside the criu.load fault
   site — publication happens after commit, and an injected load fault
   here must not turn a committed transaction into an exception. *)
let publish_deltas (s : session) ~(pids : int list)
    (journals : Rewriter.journal list) : unit =
  List.iter
    (fun pid ->
      let fresh =
        List.concat_map
          (fun (j : Rewriter.journal) ->
            if j.Rewriter.j_pid <> pid then []
            else
              List.filter_map
                (function
                  | Rewriter.Bytes_patch { p_vaddr; p_orig } ->
                      Some (p_vaddr, Bytes.length p_orig)
                  | Rewriter.Unmap_patch _ -> None)
                j.Rewriter.j_patches)
          journals
      in
      let tracked =
        match List.assoc_opt pid s.deltas with
        | None -> []
        | Some l -> List.map (fun (v, b) -> (v, Bytes.length b)) l
      in
      let vaddrs = List.sort_uniq compare (fresh @ tracked) in
      if vaddrs <> [] then
        match Vfs.find s.machine.Machine.fs (image_path s pid) with
        | None -> ()
        | Some blob -> (
            match Validate.decode_sealed blob with
            | exception Validate.Validate_error _ -> ()
            | img ->
                let entries =
                  List.filter_map
                    (fun (v, len) ->
                      match Images.read_mem img v len with
                      | b -> Some (v, b)
                      | exception Not_found -> None)
                    vaddrs
                in
                s.deltas <- (pid, entries) :: List.remove_assoc pid s.deltas))
    pids

(** The byte deltas committed transactions have left at [pid]'s journaled
    patch addresses — pristine page + these deltas = expected working
    state. The integrity scrubber's repair recipe (empty when no cut has
    touched the pid, or the controller is fresh). *)
let committed_deltas (s : session) ~(pid : int) : (int64 * bytes) list =
  match List.assoc_opt pid s.deltas with Some l -> l | None -> []

(** Disable [blocks] under [policy] as a transaction: any failure —
    including an injected fault at any pipeline site — rolls the tree
    back to its pre-cut state. Faults marked transient (or matching
    [retry_classes], a list of site prefixes) are retried up to
    [max_retries] times with capped backoff; with [degrade] set, an
    [`Unmap_pages] cut that keeps failing falls back to [`First_byte]
    before giving up. *)
let try_cut (s : session) ?(max_retries = default_max_retries)
    ?(retry_classes = []) ?(degrade = false) ?pids
    ~(blocks : Covgraph.block list) ~(policy : policy) () : cut_result =
  let blocks =
    match policy.on_trap with
    | `Redirect sym -> redirect_filter s ~sym blocks
    | `Kill | `Terminate | `Verify -> blocks
  in
  let pids = match pids with Some l -> l | None -> tree_pids s in
  let attempt method_ () =
    s.cut_count <- s.cut_count + 1;
    let journals, t_disable =
      Obs.timed_span "rewrite" (fun () ->
          guard "rewrite" (fun () -> stage_disable s pids ~blocks ~method_))
    in
    let (), t_handler =
      Obs.timed_span "inject" (fun () ->
          guard "inject" (fun () ->
              stage_handler s pids ~blocks ~on_trap:policy.on_trap ~journals))
    in
    (* never commit an image the validator rejects *)
    guard "validate" (fun () ->
        List.iter (fun pid -> Validate.check (load_image s pid)) pids);
    (journals, t_disable, t_handler)
  in
  let attempts =
    match (policy.method_, degrade) with
    | `Unmap_pages, true -> [ attempt `Unmap_pages; attempt `First_byte ]
    | m, _ -> [ attempt m ]
  in
  let r =
    run_transaction s ~op:Journal.Cut ~pids ~max_retries ~retry_classes
      ~attempts
  in
  (match r.r_outcome with
  | `Applied | `Degraded -> publish_deltas s ~pids r.r_journals
  | `Rolled_back _ -> ());
  r

(** Restore previously disabled features from their journals (§3.2.2's
    bidirectional transformation), with the same transactional
    guarantees as {!try_cut}. *)
let try_reenable (s : session) ?(max_retries = default_max_retries)
    ?(retry_classes = []) ?pids (journals : Rewriter.journal list) : cut_result =
  let pids = match pids with Some l -> l | None -> tree_pids s in
  let attempt () =
    let (), t_disable =
      Obs.timed_span "rewrite" (fun () ->
          guard "rewrite" (fun () -> reenable_edits s pids journals))
    in
    guard "validate" (fun () ->
        List.iter (fun pid -> Validate.check (load_image s pid)) pids);
    ([], t_disable, 0.)
  in
  let r =
    run_transaction s ~op:Journal.Reenable ~pids ~max_retries ~retry_classes
      ~attempts:[ attempt ]
  in
  (match r.r_outcome with
  | `Applied | `Degraded -> publish_deltas s ~pids []
  | `Rolled_back _ -> ());
  r

(** Disable [blocks] in the target tree under [policy]. Returns per-pid
    journals (for {!reenable}) and the stage timing breakdown. Raises
    {!Dynacut_error} if the transaction rolled back (the tree is then
    unchanged and still serving). *)
let cut (s : session) ~(blocks : Covgraph.block list) ~(policy : policy) :
    Rewriter.journal list * timings =
  let r = try_cut s ~blocks ~policy () in
  match r.r_outcome with
  | `Applied | `Degraded -> (r.r_journals, r.r_timings)
  | `Rolled_back { rb_stage; rb_error } ->
      raise
        (Dynacut_error
           (Printf.sprintf "cut rolled back at %s stage: %s" rb_stage rb_error))

(** Restore a previous cut's features; raises {!Dynacut_error} if the
    transaction rolled back. *)
let reenable (s : session) (journals : Rewriter.journal list) : timings =
  let r = try_reenable s journals in
  match r.r_outcome with
  | `Applied | `Degraded -> r.r_timings
  | `Rolled_back { rb_stage; rb_error } ->
      raise
        (Dynacut_error
           (Printf.sprintf "re-enable rolled back at %s stage: %s" rb_stage
              rb_error))

(** Install a seccomp-style syscall denylist across the tree via image
    rewriting (paper §5): after initialization a server no longer needs
    fork/open/socket-style syscalls, and filtering them out closes the
    kernel attack surface the way Ghavamnia et al. do — but switchable at
    run time, because it is just another image edit. [denied = None]
    clears the filter. *)
let apply_seccomp (s : session) ~(denied : int list option) : timings =
  let pids = tree_pids s in
  let (), t_checkpoint =
    Obs.timed_span "checkpoint" (fun () -> stage_checkpoint s pids)
  in
  let (), t_disable =
    Obs.timed_span "rewrite" (fun () ->
        List.iter
          (fun pid ->
            let img = load_image s pid in
            store_image s (Rewriter.set_seccomp img ~denied))
          pids)
  in
  let (), t_restore = Obs.timed_span "restore" (fun () -> stage_restore s pids) in
  { t_checkpoint; t_disable; t_handler = 0.; t_restore }

(** Read the verifier's false-positive log from the live process
    (§3.2.3): addresses whose blocking was reverted at run time. *)
let verifier_log (s : session) ~(pid : int) : int64 list =
  match (Machine.proc s.machine pid, List.assoc_opt pid s.lib_bases) with
  | Some p, Some base ->
      let _, log = Inject.read_handler_state p ~lib:s.handler_lib ~base in
      log
  | _ -> []

let handler_hits (s : session) ~(pid : int) : int64 =
  match (Machine.proc s.machine pid, List.assoc_opt pid s.lib_bases) with
  | Some p, Some base ->
      let hits, _ = Inject.read_handler_state p ~lib:s.handler_lib ~base in
      hits
  | _ -> 0L

(* ---------- journaled respawn (supervisor reverts) ---------- *)

(** Supervisor respawns go through here so a controller death
    mid-respawn is visible to recovery: [Respawn_begin] is logged
    before the re-create and [Respawn_done] once the controller is back
    in control — {e including} when the respawn itself failed (the
    supervisor handles that with backoff and a retry next tick). Only
    an unmatched intent means the controller died. *)
let journaled_respawn (s : session) ~(pid : int) ~(path : string) : Proc.t =
  match s.journal with
  | None -> Restore.respawn s.machine ~path
  | Some j -> (
      Journal.acquire j ~epoch:s.epoch;
      Journal.append j ~epoch:s.epoch (Journal.Respawn_begin { pid; path });
      let close () =
        Fault.suppressed (fun () ->
            Journal.append j ~epoch:s.epoch (Journal.Respawn_done { pid });
            Journal.finish j)
      in
      match Restore.respawn s.machine ~path with
      | p ->
          close ();
          p
      | exception (Fault.Controller_killed _ as e) -> raise e
      | exception e ->
          close ();
          raise e)

(* ---------- crash recovery (DESIGN.md §5d) ---------- *)

type recovery_action = [ `Nothing | `Thawed | `Rolled_back | `Completed ]

type recovery = {
  rec_action : recovery_action;
  rec_txid : int;  (** the open transaction's id; 0 when none was open *)
  rec_epoch : int;  (** the fencing epoch this pass stamped; 0 when idle *)
  rec_torn : bool;  (** the journal's tail was torn (crash mid-append) *)
  rec_pids : int list;  (** pids the open transaction covered *)
  rec_respawned : int list;  (** unmatched supervisor respawns redone *)
}

let pp_recovery fmt (r : recovery) =
  Format.fprintf fmt "%s%s%s%s"
    (match r.rec_action with
    | `Nothing -> "nothing to recover"
    | `Thawed -> "thawed the tree (crash before images were saved)"
    | `Rolled_back -> "rolled back from pristine images"
    | `Completed -> "transaction already finished (commit/abort logged); cleaned up")
    (if r.rec_txid <> 0 then Printf.sprintf " tx=%d" r.rec_txid else "")
    (if r.rec_torn then " [torn journal tail]" else "")
    (match r.rec_respawned with
    | [] -> ""
    | l ->
        Printf.sprintf " respawned=[%s]"
          (String.concat ";" (List.map string_of_int l)))

(** Recover the tree rooted at [root_pid] after a controller death, from
    the journal alone (the dead controller's heap is gone). The §5d
    decision table, applied to the journal's valid prefix:

    - no journal and no lock: nothing to do;
    - open transaction without [Images_saved]: the tree was at most
      frozen — thaw it;
    - open transaction with [Images_saved]: reap and re-create {e every}
      pid of the transaction from its pristine image. Uniform rollback is
      what makes a torn [Replaced] suffix harmless (a pid the dead
      controller never touched gets a state-identical re-create) and the
      pass idempotent;
    - [Commit]/[Abort] logged: the work finished, only cleanup was lost —
      thaw and quiesce.

    Unmatched supervisor respawns are redone first. The pass fences
    before it acts: the lock is stamped with a bumped epoch, so a
    controller that wakes up mid-recovery gets {!Journal.Fenced} on its
    next append. Idempotent: crashing inside recovery and re-running it
    converges to the same machine state. *)
let recover (machine : Machine.t) ~(root_pid : int) : recovery =
  let dir = Printf.sprintf "/tmpfs/dynacut-%d" root_pid in
  let j = Journal.attach machine.Machine.fs ~dir in
  let records, torn = Journal.read j in
  let lock_e = Journal.lock_epoch j in
  if records = [] && lock_e = 0 && not torn then
    {
      rec_action = `Nothing;
      rec_txid = 0;
      rec_epoch = 0;
      rec_torn = false;
      rec_pids = [];
      rec_respawned = [];
    }
  else begin
    (* fence first: a controller that still believes it owns this tree
       must fail its next append, not race the recovery pass *)
    let epoch = lock_e + 1 in
    Journal.write_lock j ~epoch;
    let sum = Journal.summarize records in
    let pristine pid = Printf.sprintf "%s/pristine-%d.img" dir pid in
    let working pid = Printf.sprintf "%s/dump-%d.img" dir pid in
    (* 1. respawns the dead controller left half-done *)
    let respawned =
      List.filter_map
        (fun (pid, path) ->
          Obs.with_span "recover.replay" @@ fun () ->
          Fault.site "recover.replay";
          let live =
            match Machine.proc machine pid with
            | Some p -> Proc.is_live p
            | None -> false
          in
          if live then None
          else
            match Restore.respawn machine ~path with
            | (_ : Proc.t) -> Some pid
            | exception (Restore.Restore_error _ | Validate.Validate_error _) -> (
                (* a half-written working image must not brick the
                   respawn — fall back to the pristine copy *)
                match Restore.respawn machine ~path:(pristine pid) with
                | (_ : Proc.t) -> Some pid
                | exception (Restore.Restore_error _ | Validate.Validate_error _)
                  ->
                    None))
        sum.Journal.s_respawns
    in
    (* Thaw a pid — or, when the pid is gone although the journal's
       prefix never recorded a reap (mid-file corruption ate the
       record), revive it from its on-storage image: [prefer] first,
       the other copy as fallback. The write-ahead guarantee only
       covers the tail, so the revival is best effort — but a sealed
       image beats a dead tree. *)
    let thaw_or_revive ~prefer ~fallback pid =
      Obs.with_span "recover.replay" @@ fun () ->
      Fault.site "recover.replay";
      match Machine.proc machine pid with
      | Some p when Proc.is_live p -> Machine.thaw machine ~pid
      | Some _ -> ()
      | None ->
          List.iter
            (fun path ->
              if Machine.proc machine pid = None then
                match Restore.respawn machine ~path with
                | (_ : Proc.t) -> ()
                | exception (Restore.Restore_error _ | Validate.Validate_error _)
                  ->
                    ())
            [ prefer pid; fallback pid ]
    in
    (* 2. the open transaction, per the decision table *)
    let action, txid, pids =
      match sum.Journal.s_tx with
      | None -> (`Nothing, 0, [])
      | Some tx when tx.Journal.tx_closed ->
          (* committed pids run the rewritten (working) image *)
          List.iter
            (thaw_or_revive ~prefer:working ~fallback:pristine)
            tx.Journal.tx_pids;
          (`Completed, tx.Journal.tx_id, tx.Journal.tx_pids)
      | Some tx when tx.Journal.tx_images_saved ->
          List.iter
            (fun pid ->
              Obs.with_span "recover.replay" @@ fun () ->
              Fault.site "recover.replay";
              Machine.reap machine ~pid;
              let img =
                match Vfs.find machine.Machine.fs (pristine pid) with
                | Some blob -> Validate.decode_sealed blob
                | None ->
                    raise
                      (Dynacut_error
                         (Printf.sprintf "recover: no pristine image for pid %d"
                            pid))
              in
              let p = Restore.restore machine img in
              p.Proc.frozen <- false;
              (* future cuts must start from a clean working copy *)
              match Vfs.find machine.Machine.fs (pristine pid) with
              | Some blob -> Vfs.add machine.Machine.fs (working pid) blob
              | None -> ())
            tx.Journal.tx_pids;
          (`Rolled_back, tx.Journal.tx_id, tx.Journal.tx_pids)
      | Some tx ->
          (* pre-Images_saved pids were at most frozen *)
          List.iter
            (thaw_or_revive ~prefer:pristine ~fallback:working)
            tx.Journal.tx_pids;
          (`Thawed, tx.Journal.tx_id, tx.Journal.tx_pids)
    in
    (* quiesce the journal; the bumped lock stays behind as the fence *)
    Journal.clear j;
    Obs.incr (Obs.counter "dynacut.recoveries");
    Obs.event ~kind:"recover"
      (Printf.sprintf "tx=%d action=%s pids=%d respawned=%d epoch=%d" txid
         (match action with
         | `Nothing -> "nothing"
         | `Completed -> "completed"
         | `Rolled_back -> "rolled_back"
         | `Thawed -> "thawed")
         (List.length pids) (List.length respawned) epoch);
    {
      rec_action = action;
      rec_txid = txid;
      rec_epoch = epoch;
      rec_torn = torn;
      rec_pids = pids;
      rec_respawned = respawned;
    }
  end
