(** The DynaCut orchestrator: freeze → checkpoint → rewrite → restore,
    with Figure 6's stage-timing breakdown.

    Typical use:
    {[
      let session = Dynacut.create machine ~root_pid in
      let journals, t =
        Dynacut.cut session ~blocks
          ~policy:{ method_ = `First_byte; on_trap = `Redirect "err_403" }
      in
      (* ... the feature now answers through the app's error path ... *)
      let _t = Dynacut.reenable session journals in
    ]} *)

type policy = {
  method_ : [ `First_byte  (** int3 in each block's first byte *)
            | `Wipe  (** int3 over every byte (anti-ROP) *)
            | `Unmap_pages  (** drop fully-covered pages; wipe the rest *) ];
  on_trap :
    [ `Kill  (** no handler: default SIGTRAP action terminates *)
    | `Terminate  (** injected handler calls exit(13) *)
    | `Redirect of string
      (** handler rewrites the saved rip to this exported symbol — the
          application's default error path (§3.2.2, Figure 5). Only
          blocks in the target's own function are patched (the paper's
          same-function requirement); blocking those dispatcher-edge
          blocks disables the feature. *)
    | `Verify
      (** over-elimination check (§3.2.3): the handler restores the
          original byte, logs the address, and retries *) ];
}

val block_features : policy
(** [{ method_ = `First_byte; on_trap = `Kill }] — the default of most
    static debloaters. *)

type timings = {
  t_checkpoint : float;
  t_disable : float;
  t_handler : float;
  t_restore : float;
}

val total_time : timings -> float
val pp_timings : Format.formatter -> timings -> unit

type session = {
  machine : Machine.t;
  root_pid : int;
  handler_lib : Self.t;  (** the injectable SIGTRAP handler (§3.3) *)
  tmpfs : string;  (** image directory in the machine fs *)
  journal : Journal.t option;
      (** the crash-consistency journal (§5d); [None] only with
          [~journal:false] *)
  epoch : int;  (** this controller's fencing token *)
  mutable next_txid : int;
  mutable lib_bases : (int * int64) list;
  mutable cut_count : int;
  mutable table_mode : int64;
  mutable table : (int * (int64 * int64) list) list;
      (** accumulated policy entries per pid: stacked cuts merge, partial
          re-enables remove only their own entries *)
  mutable deltas : (int * (int64 * bytes) list) list;
      (** per-pid byte deltas committed transactions left at journaled
          patch addresses; see {!committed_deltas} *)
}

exception Dynacut_error of string

val create : ?journal:bool -> Machine.t -> root_pid:int -> session
(** Build a session for the process tree rooted at [root_pid]; the
    handler library is linked against the target's libc. The session's
    epoch outranks any stale lock left in the tree's tmpfs. [~journal]
    (default [true]) disables the crash-consistency journal — only
    meant for the robustness benchmark's A/B comparison. *)

val tree_pids : session -> int list
(** The root and its live descendants (multi-process support, §3.2.1). *)

val redirect_filter :
  session -> sym:string -> Covgraph.block list -> Covgraph.block list
(** The same-function restriction applied by [cut] under [`Redirect]. *)

val image_path : session -> int -> string
(** Tmpfs path of a pid's working image — the most recent checkpoint
    with the cut edits applied. *)

val pristine_path : session -> int -> string
(** Tmpfs path of a pid's pristine image — the pre-cut checkpoint kept
    by the transaction engine. *)

val forget_pid : session -> pid:int -> unit
(** Drop a pid's session bookkeeping (policy-table entries, injected-lib
    base, committed deltas) after it was re-created from its pristine
    image outside the transaction engine. *)

val committed_deltas : session -> pid:int -> (int64 * bytes) list
(** The byte deltas committed transactions have left at [pid]'s
    journaled patch addresses: pristine page + these deltas = expected
    working state. Published at transaction commit; the integrity
    scrubber re-applies them over pristine pages when repairing a
    silently diverged page. Empty when no cut has touched the pid or the
    controller is fresh. *)

(** {2 Transactional cut pipeline}

    A cut (or re-enable) is a two-phase transaction over the static
    images: phase A freezes the tree, checkpoints every process (keeping
    a pristine copy of each image) and performs all edits on the tmpfs
    images; phase B replaces the live processes. Any failure in either
    phase — including a fault injected at any {!Fault.site} — rolls the
    tree back to its pre-cut state: the invariant is {e cut fully
    applied, or process tree unchanged}. *)

type rollback = { rb_stage : string; rb_error : string }
(** Where a rolled-back transaction failed: the stage name
    ([checkpoint] / [rewrite] / [inject] / [validate] / [restore]) and a
    human-readable description of the original error. *)

type outcome =
  [ `Applied  (** the requested cut is live *)
  | `Degraded  (** applied, but via the [`First_byte] fallback *)
  | `Rolled_back of rollback  (** tree unchanged, still serving *) ]

type cut_result = {
  r_journals : Rewriter.journal list;
      (** per-pid undo journals; empty on rollback *)
  r_timings : timings;
  r_outcome : outcome;
  r_retries : int;  (** transient-fault retries spent *)
  r_backoff_cycles : int;  (** virtual cycles charged as retry backoff *)
}

val pp_outcome : Format.formatter -> outcome -> unit

(** Both [try_cut] and [try_reenable] journal every state transition
    into [<tmpfs>/journal] (sealed, checksummed {!Journal.record}
    frames) before acting on it, and hold the per-tree lock for the
    duration, so a controller death at {e any} point is recoverable by
    {!recover}. They raise {!Journal.Busy} when the tree's journal holds
    an unfinished transaction (run recovery first) and {!Journal.Fenced}
    when a newer controller owns the tree; neither is a rollback — the
    tree was not touched. *)

val try_cut :
  session ->
  ?max_retries:int ->
  ?retry_classes:string list ->
  ?degrade:bool ->
  ?pids:int list ->
  blocks:Covgraph.block list ->
  policy:policy ->
  unit ->
  cut_result
(** Disable [blocks] across [pids] (default: the whole tree) as a
    transaction — a subset enables canary rollouts: freeze,
    checkpoint to tmpfs, rewrite the images, inject/update the handler,
    validate, restore. On success the live processes keep their pids,
    memory and TCP connections; on failure the tree is rolled back and
    [r_outcome] reports the failing stage. Failures whose fault is
    flagged transient — or whose site matches a prefix in
    [retry_classes], e.g. ["criu."] — are retried up to [max_retries]
    times (default 2) with capped exponential backoff charged to the
    virtual clock. With [degrade] set, an [`Unmap_pages] cut that keeps
    failing falls back to [`First_byte] and reports [`Degraded]. *)

val try_reenable :
  session ->
  ?max_retries:int ->
  ?retry_classes:string list ->
  ?pids:int list ->
  Rewriter.journal list ->
  cut_result
(** Restore a previous cut (original bytes back, pages remapped, policy
    entries removed) with the same transactional guarantees. [pids]
    (default: the whole tree) must name {e live} processes — the
    transaction freezes and checkpoints them. *)

val cut :
  session ->
  blocks:Covgraph.block list ->
  policy:policy ->
  Rewriter.journal list * timings
(** [try_cut] with defaults; raises {!Dynacut_error} if the transaction
    rolled back (the tree is then unchanged and still serving). *)

val reenable : session -> Rewriter.journal list -> timings
(** [try_reenable] with defaults; raises {!Dynacut_error} on rollback. *)

val apply_seccomp : session -> denied:int list option -> timings
(** Install ([Some denylist]) or clear ([None]) a syscall filter across
    the tree by image rewriting — §5's dynamic seccomp. *)

val verifier_log : session -> pid:int -> int64 list
(** Addresses the [`Verify] handler restored at run time — the
    false-positive report of §3.2.3. *)

val handler_hits : session -> pid:int -> int64
(** Number of SIGTRAP deliveries the injected handler served. *)

(** {2 Crash recovery (§5d)} *)

val journaled_respawn : session -> pid:int -> path:string -> Proc.t
(** [Restore.respawn] bracketed by [Respawn_begin]/[Respawn_done]
    journal records, so a controller death mid-respawn is visible to
    {!recover}. The supervisor's respawn and canary-revert paths use
    this. *)

type recovery_action =
  [ `Nothing  (** journal absent or empty — the tree was never at risk *)
  | `Thawed  (** crash before [Images_saved]: the tree was only frozen *)
  | `Rolled_back  (** every pid re-created from its pristine image *)
  | `Completed  (** [Commit]/[Abort] was logged; only cleanup was lost *)
  ]

type recovery = {
  rec_action : recovery_action;
  rec_txid : int;  (** the open transaction's id; 0 when none was open *)
  rec_epoch : int;  (** the fencing epoch this pass stamped; 0 when idle *)
  rec_torn : bool;  (** the journal's tail was torn (crash mid-append) *)
  rec_pids : int list;  (** pids the open transaction covered *)
  rec_respawned : int list;  (** unmatched supervisor respawns redone *)
}

val pp_recovery : Format.formatter -> recovery -> unit

val recover : Machine.t -> root_pid:int -> recovery
(** Recover the tree rooted at [root_pid] after a controller death,
    from the journal alone. Applies the §5d decision table to the
    journal's valid prefix: thaw when the crash predates [Images_saved],
    uniform pristine rollback when it postdates it, cleanup when
    [Commit]/[Abort] made it to storage; unmatched supervisor respawns
    are redone first. Fences before acting (bumps the lock epoch — a
    resurrected controller gets {!Journal.Fenced}) and is idempotent:
    crashing {e inside} recovery and re-running converges to the same
    machine state. The tree ends every-pid-fully-cut or
    every-pid-fully-original, never mixed within a pid. *)
