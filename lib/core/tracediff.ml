(** tracediff — undesired code block identification (paper §3.1,
    Figure 4: "our tracediff.py tool automatically calculates undesired
    basic blocks using different execution traces").

    Two analyses:
    - {!feature_blocks}: blocks exercised only by undesired requests —
      [blk ∈ CovG_undesired ∧ blk ∉ CovG_wanted], with shared-library
      blocks filtered out;
    - {!init_blocks}: blocks exercised only before the initialization
      nudge — [blk ∈ CovG_init ∧ blk ∉ CovG_serving]. *)

type report = {
  undesired : Covgraph.block list;  (** blocks safe to disable *)
  n_undesired_raw : int;  (** before library filtering *)
  n_wanted : int;
  n_total_undesired_cov : int;
}

let no_cfg : string -> Cfg.t option = fun _ -> None

(** Feature identification from wanted/undesired trace logs. Multiple
    logs per side are merged first. [keep_module] defaults to dropping
    [*.so] modules (Figure 4 shows libc.so blocks being excluded).
    [cfg_of] canonicalizes coverage onto static blocks before diffing
    (see {!Covgraph.normalize}) — required for sound wipe policies. *)
let feature_blocks ?(keep_module = fun m -> not (Covgraph.is_shared_library m))
    ?(cfg_of = no_cfg) ~(wanted : Drcov.log list) ~(undesired : Drcov.log list)
    () : report =
  let gw = Covgraph.normalize ~cfg_of (Covgraph.of_logs wanted) in
  let gu = Covgraph.normalize ~cfg_of (Covgraph.of_logs undesired) in
  let raw = Covgraph.diff gu gw in
  let filtered = Covgraph.filter_modules keep_module raw in
  {
    undesired = filtered;
    n_undesired_raw = List.length raw;
    n_wanted = Covgraph.cardinal gw;
    n_total_undesired_cov = Covgraph.cardinal gu;
  }

(** Initialization-only block identification from the two coverage dumps
    produced by the nudge protocol (§3.1): the blocks covered during
    initialization that never re-appear during serving. *)
let init_blocks ?(keep_module = fun _ -> true) ?(cfg_of = no_cfg)
    ~(init : Drcov.log) ~(serving : Drcov.log) () : report =
  let gi = Covgraph.normalize ~cfg_of (Covgraph.of_log init) in
  let gs = Covgraph.normalize ~cfg_of (Covgraph.of_log serving) in
  let raw = Covgraph.diff gi gs in
  let filtered = Covgraph.filter_modules keep_module raw in
  {
    undesired = filtered;
    n_undesired_raw = List.length raw;
    n_wanted = Covgraph.cardinal gs;
    n_total_undesired_cov = Covgraph.cardinal gi;
  }

type slice_report = {
  sliced : Covgraph.block list;  (** covered blocks outside every slice *)
  n_covered : int;  (** serving coverage, after module filtering *)
  n_slice_points : int;  (** slice points received *)
}

(** Slice-based identification (the third candidate class): covered
    blocks outside every wanted-output slice. [in_slice] is the
    slicer's output — (module name, dynamic block-start offset, extent
    in bytes) spans — kept as plain data so the slicer library needn't
    depend on this one. A static block is in the slice iff some slice
    span overlaps its byte range: dynamic blocks are maximal
    fall-through runs, so one span can blanket several static CFG
    blocks. This refines the coverage diff: a block can be covered by
    wanted requests yet contribute to no wanted output. *)
let sliced_away ?(keep_module = fun m -> not (Covgraph.is_shared_library m))
    ?(cfg_of = no_cfg) ~(covered : Drcov.log list)
    ~(in_slice : (string * int * int) list) () : slice_report =
  let g = Covgraph.normalize ~cfg_of (Covgraph.of_logs covered) in
  let blocks = Covgraph.filter_modules keep_module (Covgraph.blocks g) in
  let hit (b : Covgraph.block) =
    List.exists
      (fun (m, off, len) ->
        m = b.Covgraph.b_module
        && off < b.Covgraph.b_off + b.Covgraph.b_size
        && b.Covgraph.b_off < off + len)
      in_slice
  in
  {
    sliced = List.filter (fun b -> not (hit b)) blocks;
    n_covered = List.length blocks;
    n_slice_points = List.length in_slice;
  }

let pp_slice_report fmt (r : slice_report) =
  Format.fprintf fmt
    "tracediff: %d covered blocks sliced away (%d covered, %d slice points)@."
    (List.length r.sliced) r.n_covered r.n_slice_points;
  List.iter
    (fun b -> Format.fprintf fmt "  %a@." Covgraph.pp_block b)
    r.sliced

(** Human-readable listing in the style of Figure 4's tool output. *)
let pp_report fmt (r : report) =
  Format.fprintf fmt
    "tracediff: %d undesired blocks (%d before library filtering); wanted coverage %d blocks@."
    (List.length r.undesired) r.n_undesired_raw r.n_wanted;
  List.iter
    (fun b -> Format.fprintf fmt "  %a@." Covgraph.pp_block b)
    r.undesired
