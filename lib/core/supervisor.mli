(** Post-cut supervision: canary rollouts, a trap-storm circuit breaker,
    and crash-loop respawn (guarded rollout, §5c of DESIGN.md).

    A cut that passes the transactional pipeline can still be {e wrong}:
    the coverage diff may have blocked a path production traffic needs.
    The supervisor watches the live tree after a cut through the
    deterministic virtual clock and reacts:

    - {b canary rollout}: {!guarded_cut} first cuts a single worker of a
      multi-process tree, watches its trap rate over
      [canary_windows × window] virtual cycles, and only then promotes
      the cut to the remaining processes (or reverts the canary);
    - {b circuit breaker}: a sliding window over the injected handler's
      trap counter; a breach auto-re-enables the feature, waits out a
      cooldown, half-open probes with a re-cut, and abandons the cut for
      good after [max_trips] trips;
    - {b crash-loop respawn}: a worker killed by an un-redirected trap
      ([`Kill] policy, SIGILL on wiped bytes, SIGSEGV on unmapped pages)
      is respawned from its checkpoint image with exponential backoff,
      up to [max_respawns] times;
    - {b verifier feedback}: {!verifier_feedback} folds the [`Verify]
      handler's false-positive log back into the block set — re-enable,
      shrink, re-cut.

    All scheduling is in virtual cycles and every decision is appended
    to an event log ({!render_log}), so a run with a fixed seed replays
    bit-for-bit. The supervisor never runs the machine itself: the
    driver alternates [Machine.run] slices with {!tick}. *)

type config = {
  window : int64;  (** sliding SLO window, virtual cycles *)
  max_traps : int;  (** traps tolerated per window while Closed *)
  half_open_max_traps : int;  (** tolerated during a half-open probe *)
  critical : bool;  (** any trap at all trips the breaker *)
  cooldown : int64;  (** cycles spent Open before a half-open probe *)
  max_trips : int;  (** trips before the cut is abandoned *)
  max_respawns : int;  (** per-pid respawn budget *)
  canary_windows : int;  (** healthy windows required to promote *)
}

val default_config : config
(** window = 50_000 cycles, max_traps = 3, half_open_max_traps = 0,
    critical = false, cooldown = 100_000, max_trips = 3,
    max_respawns = 5, canary_windows = 2. *)

type breaker =
  | Closed  (** cut live, trap rate inside the SLO *)
  | Open of int64  (** feature re-enabled until this cycle *)
  | Half_open of int64  (** probe re-cut live since this cycle *)
  | Abandoned  (** trip budget exhausted; feature stays enabled *)

val pp_breaker : Format.formatter -> breaker -> unit

type event_kind =
  | Cut_applied of int list
  | Canary_cut of int
  | Canary_promoted of int list
  | Canary_rejected of { pid : int; traps : int }
  | Promotion_failed of string
  | Breaker_tripped of { traps : int; trip : int }
  | Reenabled
  | Reenable_failed of string
  | Half_open_probe
  | Probe_recut of int list
  | Probe_failed of string
  | Breaker_closed
  | Abandoned_cut
  | Respawned of { pid : int; deaths : int }
  | Respawn_failed of { pid : int; error : string }
  | Respawn_capped of int
  | Verifier_shrunk of { dropped : int; kept : int }

type event = { e_clock : int64;  (** virtual clock at decision time *) e_kind : event_kind }

val pp_event : Format.formatter -> event -> unit

type rollout =
  | R_promoted  (** the cut is live on every supervised pid *)
  | R_canary_rejected  (** the canary breached the SLO; tree original *)
  | R_promotion_failed  (** promotion failed mid-flight; tree original *)
  | R_rolled_back of string  (** the initial cut itself rolled back *)

val pp_rollout : Format.formatter -> rollout -> unit

type t

val create :
  Dynacut.session ->
  config:config ->
  blocks:Covgraph.block list ->
  policy:Dynacut.policy ->
  t
(** Attach a supervisor to a session. Installs the machine's exit hook
    (chaining any previously installed one) to observe worker deaths. *)

val guarded_cut : t -> ?canary:bool -> drive:(unit -> unit) -> unit -> rollout
(** Apply the supervised cut. With [canary] (the default) the cut lands
    on one non-root worker first; [drive] is called once per observation
    window to advance the machine and its traffic, then the canary's
    trap delta is examined. A healthy canary promotes the cut to the
    rest of the tree (fault site [supervisor.promote]); a breach — or a
    canary death — reverts it, leaving every pid byte-original. With
    [~canary:false] the cut lands on the whole tree at once and only the
    breaker/respawn machinery applies. *)

val tick : t -> unit
(** One supervision step: respawn eligible dead workers (fault site
    [restore.respawn]), sample the trap counters, and advance the
    breaker state machine (re-enable on trip uses fault site
    [supervisor.reenable]). Call between [Machine.run] slices. *)

val breaker_state : t -> breaker
val trips : t -> int

val breaker_gauge : root_pid:int -> Obs.gauge
(** The per-worker [supervisor.breaker{pid}] gauge — breaker state
    encoded 0/1/2/3 (Closed/Open/Half-open/Abandoned), mirrored on every
    transition. The fleet balancer reads it to drain a breaker-open
    worker and trickle probes to a half-open one, without holding a
    supervisor handle. *)

val cut_live : t -> bool
(** True while the cut is applied (Closed or Half_open with journals). *)

val journals : t -> Rewriter.journal list
(** Current undo journals (empty while the feature is re-enabled). *)

val blocks : t -> Covgraph.block list
(** The block set currently targeted (shrinks under verifier feedback). *)

val verifier_feedback : t -> int
(** Fold [`Verify] false positives back into the cut: re-enable, drop
    every block whose address the handler logged, re-cut the shrunk set.
    Returns the number of blocks dropped (0 = nothing to do, cut
    untouched). *)

val event_log : t -> event list
(** All decisions, oldest first. *)

val render_log : t -> string
(** The event log as one line per decision — two runs from the same
    seed must render identically (replay check). *)

val block_of_sym : Self.t -> module_:string -> sym:string -> Covgraph.block
(** The static basic block at an exported symbol — handy for building a
    deliberate trap-storm (cutting a wanted path) in tests and the CLI's
    [--storm]. Raises {!Dynacut.Dynacut_error} if the symbol is
    missing. *)
