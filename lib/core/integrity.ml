(** Memory-integrity scrubbing and page-level self-healing.

    The baseline is captured {e live}: after a restore the loader and
    the committed cut edits have already shaped the immutable pages, so
    file bytes alone are not the truth — what the tree actually runs is.
    Staleness is physical: a restore installs a fresh {!Mem.t}, so a
    manifest whose page table is no longer the pid's page table is
    rebuilt rather than trusted.

    Repair never pokes a byte it has not proven: every candidate source
    is digested against the baseline first, in trust order — the working
    image (what the last commit sealed), the pristine image with the
    committed rewrite deltas re-applied, the backing binary, and only
    then the in-memory baseline snapshot. *)

type finding = {
  f_pid : int;
  f_vaddr : int64;
  f_expected : int64;
  f_found : int64;
}

let pp_finding fmt f =
  Format.fprintf fmt "pid %d page 0x%Lx: digest %Lx, expected %Lx" f.f_pid
    f.f_vaddr f.f_found f.f_expected

type repair_outcome = Repaired of string | Repair_failed of string

(* virtual-cost model, in cycles: a generation check is a dirty-bit read,
   a hash touches the whole 4 KiB page, a repair decodes and validates an
   image frame before poking, and a respawn rebuilds the whole address
   space. The constants only need to preserve the real orderings
   (skip << hash << repair << respawn) for the bench economics to be
   meaningful. *)
let cost_skip = 1
let cost_hash = 16
let cost_repair = 128
let cost_respawn_fixed = 4096
let cost_respawn_page = 256

type entry = {
  e_vaddr : int64;
  e_digest : int64;
  e_snapshot : bytes;
  mutable e_gen : int;  (** write generation last proven clean *)
}

type manifest = {
  m_pid : int;
  m_mem : Mem.t;  (** physical identity — a restored pid gets a new one *)
  m_entries : entry array;
}

type t = {
  session : Dynacut.session;
  machine : Machine.t;
  mutable manifests : (int * manifest) list;
  mutable cursor : int;  (** rotation position in the flattened page walk *)
  c_visited : Obs.counter;
  c_hashed : Obs.counter;
  c_skipped : Obs.counter;
  c_mismatch : Obs.counter;
  c_repair_failed : Obs.counter;
  g_pages : Obs.gauge;
  h_repair : Obs.histogram;
}

let create (session : Dynacut.session) : t =
  {
    session;
    machine = session.Dynacut.machine;
    manifests = [];
    cursor = 0;
    c_visited = Obs.counter "integrity.pages_scanned";
    c_hashed = Obs.counter "integrity.pages_hashed";
    c_skipped = Obs.counter "integrity.pages_skipped";
    c_mismatch = Obs.counter "integrity.mismatches";
    c_repair_failed = Obs.counter "integrity.repair_failures";
    g_pages = Obs.gauge "integrity.baseline_pages";
    h_repair =
      Obs.histogram
        ~buckets:[ 32.; 64.; 128.; 256.; 512.; 1024.; 4096.; 16384. ]
        "integrity.repair_cycles";
  }

let charge (t : t) (n : int) : unit =
  t.machine.Machine.clock <- Int64.add t.machine.Machine.clock (Int64.of_int n)

let immutable_vmas (mem : Mem.t) : Mem.vma list =
  List.filter (fun (v : Mem.vma) -> not v.Mem.va_prot.Self.p_w) mem.Mem.vmas

let pages_tracked (t : t) : int =
  List.fold_left (fun n (_, m) -> n + Array.length m.m_entries) 0 t.manifests

let tracked_pids (t : t) : int list = List.map fst t.manifests
let drop_pid (t : t) ~pid = t.manifests <- List.remove_assoc pid t.manifests

let set_pages_gauge (t : t) =
  Obs.set_gauge t.g_pages (float_of_int (pages_tracked t))

(* Capture a live manifest: digest + snapshot of every resident page of
   every non-writable VMA, with the generation it was clean at. *)
let rebaseline (t : t) ~(pid : int) : unit =
  (match Machine.proc t.machine pid with
  | Some p when Proc.is_live p ->
      let mem = p.Proc.mem in
      let entries =
        List.concat_map
          (fun v ->
            List.map
              (fun (vaddr, data) ->
                charge t cost_hash;
                {
                  e_vaddr = vaddr;
                  e_digest = Mem.digest_bytes data;
                  e_snapshot = Bytes.copy data;
                  e_gen =
                    (match Mem.page_gen mem vaddr with Some g -> g | None -> 0);
                })
              (Mem.pages_of_vma mem v))
          (immutable_vmas mem)
      in
      t.manifests <-
        (pid, { m_pid = pid; m_mem = mem; m_entries = Array.of_list entries })
        :: List.remove_assoc pid t.manifests;
      Obs.event ~kind:"integrity"
        (Printf.sprintf "baseline pid=%d pages=%d" pid (List.length entries))
  | _ -> drop_pid t ~pid);
  set_pages_gauge t

(* A manifest is trusted only while its page table is still the pid's
   page table; anything else (restore, respawn, death) invalidates it. *)
let ensure_fresh (t : t) ~(pid : int) : unit =
  match Machine.proc t.machine pid with
  | Some p when Proc.is_live p -> (
      match List.assoc_opt pid t.manifests with
      | Some m when m.m_mem == p.Proc.mem -> ()
      | _ -> rebaseline t ~pid)
  | _ -> drop_pid t ~pid

let check_page (t : t) (m : manifest) (e : entry) : finding option =
  Fault.site ~scope:m.m_pid "scrub.page";
  Obs.incr t.c_visited;
  match Mem.page_gen m.m_mem e.e_vaddr with
  | None ->
      (* unmapped since baseline (an unmap cut landed without a restore —
         cannot happen through the transaction engine); nothing to audit *)
      charge t cost_skip;
      Obs.incr t.c_skipped;
      None
  | Some g when g = e.e_gen ->
      charge t cost_skip;
      Obs.incr t.c_skipped;
      None
  | Some g -> (
      charge t cost_hash;
      Obs.incr t.c_hashed;
      match Mem.page_digest m.m_mem e.e_vaddr with
      | Some d when d = e.e_digest ->
          e.e_gen <- g;
          None
      | Some d ->
          Obs.incr t.c_mismatch;
          Obs.event ~kind:"integrity"
            (Printf.sprintf "mismatch pid=%d vaddr=0x%Lx digest=%Lx expected=%Lx"
               m.m_pid e.e_vaddr d e.e_digest);
          Some
            {
              f_pid = m.m_pid;
              f_vaddr = e.e_vaddr;
              f_expected = e.e_digest;
              f_found = d;
            }
      | None ->
          Obs.incr t.c_skipped;
          None)

let scrub (t : t) ?pids ~(quantum : int) () : finding list =
  let pids =
    match pids with Some l -> l | None -> Dynacut.tree_pids t.session
  in
  List.iter (fun pid -> ensure_fresh t ~pid) pids;
  let flat =
    List.concat_map
      (fun pid ->
        match List.assoc_opt pid t.manifests with
        | Some m -> List.map (fun e -> (m, e)) (Array.to_list m.m_entries)
        | None -> [])
      pids
  in
  let n = List.length flat in
  if n = 0 || quantum <= 0 then []
  else begin
    let arr = Array.of_list flat in
    let start = t.cursor mod n in
    let quantum = min quantum n in
    let findings = ref [] in
    for k = 0 to quantum - 1 do
      let m, e = arr.((start + k) mod n) in
      match check_page t m e with
      | Some f -> findings := f :: !findings
      | None -> ()
    done;
    t.cursor <- (start + quantum) mod n;
    List.rev !findings
  end

let scrub_full (t : t) ?pids () : finding list =
  scrub t ?pids ~quantum:max_int ()

let recheck (t : t) (f : finding) : bool =
  match List.assoc_opt f.f_pid t.manifests with
  | None -> false
  | Some m -> (
      charge t cost_hash;
      match Mem.page_digest m.m_mem f.f_vaddr with
      | Some d -> d = f.f_expected
      | None -> false)

(* One page of a sealed tmpfs image, decoded outside the criu.load fault
   site: repair has its own site, and riding criu.load here would skew
   the hit schedules every armed criu.load fault counts on. *)
let page_from_image (t : t) ~(vaddr : int64) ~(path : string) : bytes option =
  match Vfs.find t.machine.Machine.fs path with
  | None -> None
  | Some blob -> (
      match Validate.decode_sealed blob with
      | exception Validate.Validate_error _ -> None
      | img -> Restore.image_page_bytes t.machine img ~vaddr)

(* Re-apply the committed rewrite deltas that overlap one pristine page:
   pristine bytes + deltas = the expected working state. *)
let apply_deltas ~(page_base : int64) (page : bytes)
    (deltas : (int64 * bytes) list) : bytes =
  let page = Bytes.copy page in
  let p_lo = Int64.to_int page_base
  and p_hi = Int64.to_int page_base + Bytes.length page in
  List.iter
    (fun (vaddr, b) ->
      let d_lo = Int64.to_int vaddr in
      let d_hi = d_lo + Bytes.length b in
      let lo = max p_lo d_lo and hi = min p_hi d_hi in
      if lo < hi then Bytes.blit b (lo - d_lo) page (lo - p_lo) (hi - lo))
    deltas;
  page

let file_page (t : t) (m : manifest) ~(vaddr : int64) : bytes option =
  match Mem.find_vma m.m_mem vaddr with
  | Some { Mem.va_file = Some (path, off); va_start; _ } -> (
      let off = off + Int64.to_int (Int64.sub vaddr va_start) in
      try Some (Restore.file_bytes t.machine ~path ~off ~len:Mem.page_size)
      with Restore.Restore_error _ -> None)
  | _ -> None

let repair (t : t) (f : finding) : repair_outcome =
  Fault.site ~scope:f.f_pid "integrity.repair";
  let t0 = t.machine.Machine.clock in
  charge t cost_repair;
  let entry =
    match List.assoc_opt f.f_pid t.manifests with
    | None -> None
    | Some m ->
        Array.fold_left
          (fun acc e -> if e.e_vaddr = f.f_vaddr then Some (m, e) else acc)
          None m.m_entries
  in
  match entry with
  | None -> Repair_failed "no baseline entry for the page"
  | Some (m, e) -> (
      let sources =
        [
          ( "working",
            fun () ->
              page_from_image t ~vaddr:f.f_vaddr
                ~path:(Dynacut.image_path t.session f.f_pid) );
          ( "pristine",
            fun () ->
              Option.map
                (fun b ->
                  apply_deltas ~page_base:f.f_vaddr b
                    (Dynacut.committed_deltas t.session ~pid:f.f_pid))
                (page_from_image t ~vaddr:f.f_vaddr
                   ~path:(Dynacut.pristine_path t.session f.f_pid)) );
          ("file", fun () -> file_page t m ~vaddr:f.f_vaddr);
          ("snapshot", fun () -> Some e.e_snapshot);
        ]
      in
      let chosen =
        List.fold_left
          (fun acc (name, get) ->
            match acc with
            | Some _ -> acc
            | None -> (
                match get () with
                | Some b
                  when Bytes.length b = Mem.page_size
                       && Mem.digest_bytes b = f.f_expected ->
                    Some (name, b)
                | _ -> None))
          None sources
      in
      match chosen with
      | None ->
          Obs.incr t.c_repair_failed;
          Obs.event ~kind:"integrity"
            (Printf.sprintf "repair failed pid=%d vaddr=0x%Lx" f.f_pid f.f_vaddr);
          Repair_failed "no source reproduces the expected digest"
      | Some (name, b) ->
          Mem.poke_bytes m.m_mem f.f_vaddr b;
          (match Mem.page_gen m.m_mem f.f_vaddr with
          | Some g -> e.e_gen <- g
          | None -> ());
          Obs.incr (Obs.counter ~labels:[ ("source", name) ] "integrity.repairs");
          Obs.observe t.h_repair
            (Int64.to_float (Int64.sub t.machine.Machine.clock t0));
          Obs.event ~kind:"integrity"
            (Printf.sprintf "repaired pid=%d vaddr=0x%Lx from %s" f.f_pid
               f.f_vaddr name);
          Repaired name)

let respawn_cost (t : t) ~(pid : int) : int =
  let pages =
    match List.assoc_opt pid t.manifests with
    | Some m -> Array.length m.m_entries
    | None -> 0
  in
  cost_respawn_fixed + (cost_respawn_page * max 1 pages)

let charge_respawn (t : t) ~(pid : int) : unit = charge t (respawn_cost t ~pid)
