(** Durable write-ahead intent journal for the cut transaction
    (DESIGN.md §5d).

    Every state transition of a [Dynacut.try_cut]/[try_reenable]
    transaction — and every supervisor respawn — appends a sealed,
    checksummed record to [<tmpfs>/journal] {e before} the action it
    announces, so [Dynacut.recover] can reconstruct a dead controller's
    progress from storage alone. A sealed lock file carries the owning
    controller's epoch (the fencing token): appends re-check it, and
    recovery bumps it, so a resurrected controller fails with {!Fenced}
    instead of racing the recovery pass. *)

type op = Cut | Reenable

val op_to_string : op -> string

type record =
  | Begin of { txid : int; op : op; pids : int list }
      (** transaction opened; the tree is about to be frozen *)
  | Frozen of int  (** every pid of the transaction is frozen *)
  | Images_saved of int
      (** pristine + working images sealed in tmpfs; from here rollback
          by pristine restore is always possible *)
  | Rewritten of int  (** image edits validated; restore is next *)
  | Replaced of { txid : int; pid : int }
      (** [pid] is about to be reaped and re-created from the rewritten
          image — intent, logged before the reap *)
  | Commit of int  (** every pid runs the rewritten image *)
  | Abort of int  (** the controller finished rolling the tree back *)
  | Respawn_begin of { pid : int; path : string }
      (** supervisor respawn of [pid] from [path] is about to run *)
  | Respawn_done of { pid : int }
      (** the controller regained control after [Respawn_begin] *)

val pp_record : Format.formatter -> record -> unit

type t
(** Handle on one tree's journal + lock inside its tmpfs directory. *)

exception Fenced of { epoch : int; lock_epoch : int }
(** The lock no longer carries this controller's epoch — a newer
    controller (or a recovery pass) owns the tree now. A fenced
    controller must stop; it must not write. *)

exception Busy of { txid : int }
(** The journal holds an unfinished transaction: the tree needs
    [dynacut recover] before it can be cut again. *)

val attach : Vfs.t -> dir:string -> t
(** Handle on [<dir>/journal] and [<dir>/lock]; creates nothing. *)

val journal_path : t -> string
val lock_path : t -> string

val read : t -> record list * bool
(** The valid prefix in append order; the [bool] flags a torn tail
    (truncated write or corruption). Never raises — the prefix is
    authoritative, exactly the write-ahead guarantee. *)

val append : t -> epoch:int -> record -> unit
(** Append one sealed record. Verifies the lock still carries [epoch]
    first; raises {!Fenced} otherwise. [Fault.site "journal.append"]. *)

val lock_epoch : t -> int
(** Epoch in the lock file; 0 when absent or unreadable. *)

val write_lock : t -> epoch:int -> unit
(** Stamp the lock with [epoch] unconditionally — recovery's fencing
    move. [Fault.site "journal.lock"]. *)

val acquire : t -> epoch:int -> unit
(** Take (or refresh) the lock for [epoch]; raises {!Fenced} when a
    newer epoch already holds it. *)

val clear : t -> unit
(** Remove the journal file only — recovery keeps its bumped lock
    behind as a fence against resurrected controllers. *)

val finish : t -> unit
(** Remove journal and lock — a transaction's clean finish. *)

(** {2 Summarizing} *)

type tx_state = {
  tx_id : int;
  tx_op : op;
  tx_pids : int list;
  tx_frozen : bool;
  tx_images_saved : bool;
  tx_rewritten : bool;
  tx_replaced : int list;  (** pids with a [Replaced] intent, oldest first *)
  tx_closed : bool;  (** [Commit] or [Abort] logged *)
}

type summary = {
  s_tx : tx_state option;  (** the journal's last transaction, if any *)
  s_respawns : (int * string) list;
      (** unmatched [Respawn_begin]s, oldest first *)
}

val summarize : record list -> summary
val quiescent : summary -> bool
(** No open transaction and no unmatched respawn: nothing to recover. *)

(** {2 Fleet manifest}

    A second intent log, one per {e fleet} rather than per tree: records
    rollout progress across workers ([Wave_begin] before a wave cuts,
    [Worker_cut] after each member commits, [Wave_done] / [Rollout_halted]
    / [Rollout_done] as the rollout advances) so a crash mid-rollout can
    be replayed back to a uniform fleet. Per-worker cut atomicity is the
    worker's own journal's business; the manifest records {e intent
    across} workers. Same sealed-frame format, longest-valid-prefix
    reads. *)
module Manifest : sig
  type entry =
    | Wave_begin of { wave : int; pids : int list }
        (** wave [wave] is about to start cutting [pids] *)
    | Worker_cut of { wave : int; pid : int }
        (** [pid]'s cut transaction committed as part of [wave] *)
    | Wave_done of { wave : int }  (** every pid of the wave is cut *)
    | Rollout_halted of { wave : int }
        (** rollout stopped at [wave]; its partial cuts were reverted *)
    | Rollout_done of { waves : int }  (** all [waves] waves committed *)
    | Checkpoint of { completed : int list; halted : int option; done_ : bool }
        (** compaction record: the summary of everything before it *)

  type t

  val attach : Vfs.t -> dir:string -> t
  (** Handle on [<dir>/manifest]; creates nothing. *)

  val append : t -> entry -> unit

  val read : t -> entry list * bool
  (** Valid prefix + torn-tail flag; never raises. *)

  val compact : t -> unit
  (** Rewrite the manifest as one [Checkpoint] (summary-preserving),
      re-appending an open wave's records verbatim so recovery can still
      unwind it. A torn tail is dropped and the file is fully sealed
      again. *)

  val clear : t -> unit
  val pp_entry : Format.formatter -> entry -> unit

  type summary = {
    m_completed : int list;  (** waves with [Wave_done], oldest first *)
    m_open : (int * int list * int list) option;
        (** a [Wave_begin] without [Wave_done]/[Rollout_halted]:
            (wave, planned pids, pids with a [Worker_cut]) *)
    m_halted : int option;  (** rollout halted at this wave *)
    m_done : bool;  (** [Rollout_done] logged *)
  }

  val summarize : entry list -> summary
end
