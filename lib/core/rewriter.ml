(** The process rewriter (paper §3.2.1, §3.3): all DynaCut code edits
    happen on a *static process image*, never on live memory — "by
    rewriting a static process image, we avoid the complications of
    dealing with potential race conditions".

    Supported transformations, mirroring the paper's extended CRIT:
    - update memory contents (replace the first byte of a basic block —
      or every byte — with [int3]);
    - unmap whole code pages;
    - enlarge the VMA set / insert a position-independent shared library
      (see {!Inject});
    - update the SIGTRAP sigaction in the core image.

    Every destructive edit records the original bytes in a {!journal}, so
    the feature can later be restored ("bidirectional" transformation,
    §3.2.2). *)

type patch =
  | Bytes_patch of { p_vaddr : int64; p_orig : bytes }
  | Unmap_patch of {
      u_vma : Images.vma_img;  (** original VMA row *)
      u_pages : (int64 * bytes) list;  (** page contents that were dropped *)
    }

type journal = { j_pid : int; j_patches : patch list }

exception Rewrite_error of string

let int3 = '\xCC'

(** Base address of module [name] inside an image: the lowest VMA whose
    name is [name:<section>]. *)
let module_base (img : Images.t) (name : string) : int64 option =
  let prefix = name ^ ":" in
  let plen = String.length prefix in
  List.fold_left
    (fun acc (v : Images.vma_img) ->
      if
        String.length v.Images.vi_name >= plen
        && String.sub v.Images.vi_name 0 plen = prefix
      then
        match acc with
        | None -> Some v.Images.vi_start
        | Some a -> Some (min a v.Images.vi_start)
      else acc)
    None img.Images.mm

let block_vaddr img (b : Covgraph.block) : int64 =
  match module_base img b.Covgraph.b_module with
  | Some base -> Int64.add base (Int64.of_int b.Covgraph.b_off)
  | None ->
      raise
        (Rewrite_error
           (Printf.sprintf "module %s not mapped in pid %d" b.Covgraph.b_module
              img.Images.core.Images.c_pid))

(** Replace the first byte of each block with [int3] (the default,
    cheapest policy — enough to block a feature entered through its
    unique first block, §3.2.2). *)
let disable_first_byte (img : Images.t) (blocks : Covgraph.block list) : patch list =
  Fault.site "rewrite.patch";
  List.map
    (fun b ->
      let va = block_vaddr img b in
      let orig =
        try Images.read_mem img va 1
        with Not_found ->
          raise (Rewrite_error (Printf.sprintf "block %s+0x%x not in dumped pages"
                                  b.Covgraph.b_module b.Covgraph.b_off))
      in
      Images.write_mem img va (Bytes.make 1 int3);
      Bytes_patch { p_vaddr = va; p_orig = orig })
    blocks

(** Wipe every byte of each block with [int3] — the aggressive policy
    that also defeats code-reuse (ROP) on the disabled feature. *)
let wipe_blocks (img : Images.t) (blocks : Covgraph.block list) : patch list =
  Fault.site "rewrite.patch";
  List.map
    (fun b ->
      let va = block_vaddr img b in
      let orig =
        try Images.read_mem img va b.Covgraph.b_size
        with Not_found ->
          raise (Rewrite_error (Printf.sprintf "block %s+0x%x not in dumped pages"
                                  b.Covgraph.b_module b.Covgraph.b_off))
      in
      Images.write_mem img va (Bytes.make b.Covgraph.b_size int3);
      Bytes_patch { p_vaddr = va; p_orig = orig })
    blocks

let page_size = 4096
let page_base (a : int64) = Int64.mul (Int64.div a 4096L) 4096L

(** Unmap the code pages *fully covered* by the given blocks (unmapping a
    partially-covered page would take live code with it). Removes the
    pages from pagemap/pages and splits the VMAs, recording everything
    for restore. *)
let unmap_block_pages (img : Images.t) (blocks : Covgraph.block list) :
    patch list * Images.t =
  Fault.site "rewrite.unmap";
  (* bytes of each page covered by any block *)
  let coverage : (int64, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun b ->
      let va = block_vaddr img b in
      for k = 0 to b.Covgraph.b_size - 1 do
        let pg = page_base (Int64.add va (Int64.of_int k)) in
        Hashtbl.replace coverage pg (1 + Option.value ~default:0 (Hashtbl.find_opt coverage pg))
      done)
    blocks;
  let victim_pages =
    Hashtbl.fold (fun pg n acc -> if n = page_size then pg :: acc else acc) coverage []
    |> List.sort compare
  in
  if victim_pages = [] then ([], img)
  else begin
    (* capture page contents + affected VMA rows for the journal *)
    let patches =
      List.filter_map
        (fun pg ->
          match Images.find_vma img pg with
          | None -> None
          | Some vma ->
              let data = try Images.read_mem img pg page_size with Not_found -> Bytes.create 0 in
              Some (Unmap_patch { u_vma = vma; u_pages = [ (pg, data) ] }))
        victim_pages
    in
    (* rebuild mm: split VMAs around each victim page *)
    let in_victims a = List.mem (page_base a) victim_pages in
    let mm =
      List.concat_map
        (fun (v : Images.vma_img) ->
          let npages = v.Images.vi_len / page_size in
          (* group consecutive surviving pages into VMA fragments *)
          let frags = ref [] in
          let cur = ref None in
          for k = 0 to npages - 1 do
            let pa = Int64.add v.Images.vi_start (Int64.of_int (k * page_size)) in
            if in_victims pa then begin
              (match !cur with Some (s, n) -> frags := (s, n) :: !frags | None -> ());
              cur := None
            end
            else
              match !cur with
              | Some (s, n) -> cur := Some (s, n + 1)
              | None -> cur := Some (pa, 1)
          done;
          (match !cur with Some (s, n) -> frags := (s, n) :: !frags | None -> ());
          List.rev_map
            (fun (s, n) ->
              let delta = Int64.to_int (Int64.sub s v.Images.vi_start) in
              {
                v with
                Images.vi_start = s;
                vi_len = n * page_size;
                vi_file =
                  (match v.Images.vi_file with
                  | Some (f, off) -> Some (f, off + delta)
                  | None -> None);
              })
            !frags)
        img.Images.mm
    in
    (* rebuild pagemap/pages without the victim pages *)
    let buf = Buffer.create (Bytes.length img.Images.pages) in
    let pagemap = ref [] in
    let cur_start = ref None and cur_n = ref 0 in
    let flush () =
      match !cur_start with
      | Some s ->
          pagemap :=
            { Images.pm_vaddr = s; pm_npages = !cur_n; pm_off = Buffer.length buf - (!cur_n * page_size) }
            :: !pagemap;
          cur_start := None;
          cur_n := 0
      | None -> ()
    in
    List.iter
      (fun (pm : Images.pagemap_entry) ->
        for k = 0 to pm.Images.pm_npages - 1 do
          let pa = Int64.add pm.Images.pm_vaddr (Int64.of_int (k * page_size)) in
          if in_victims pa then flush ()
          else begin
            (match !cur_start with
            | None ->
                cur_start := Some pa;
                cur_n := 1
            | Some _ -> incr cur_n);
            Buffer.add_subbytes buf img.Images.pages (pm.Images.pm_off + (k * page_size)) page_size
          end
        done;
        flush ())
      img.Images.pagemap;
    flush ();
    let img' =
      { img with Images.mm; pagemap = List.rev !pagemap; pages = Buffer.to_bytes buf }
    in
    (patches, img')
  end

(** Undo byte patches on an image (feature re-enable / restore). Unmap
    patches are handled by {!remap}. *)
let restore_bytes (img : Images.t) (patches : patch list) : unit =
  List.iter
    (function
      | Bytes_patch { p_vaddr; p_orig } -> Images.write_mem img p_vaddr p_orig
      | Unmap_patch _ -> ())
    patches

(** Re-insert previously unmapped VMAs and their page contents. *)
let remap (img : Images.t) (patches : patch list) : Images.t =
  List.fold_left
    (fun img p ->
      match p with
      | Bytes_patch _ -> img
      | Unmap_patch { u_vma; u_pages } ->
          (* drop the split fragments (and, when several patches share one
             original row, an already re-added copy) that fall inside the
             original VMA's range, then re-add the whole row — otherwise the
             mm list ends up with overlapping entries and the restored
             process double-maps those pages *)
          let u_end = Int64.add u_vma.Images.vi_start (Int64.of_int u_vma.Images.vi_len) in
          let survivors =
            List.filter
              (fun (v : Images.vma_img) ->
                not
                  (v.Images.vi_name = u_vma.Images.vi_name
                  && v.Images.vi_start >= u_vma.Images.vi_start
                  && Int64.add v.Images.vi_start (Int64.of_int v.Images.vi_len) <= u_end))
              img.Images.mm
          in
          let mm = survivors @ [ u_vma ] in
          let mm = List.sort (fun a b -> compare a.Images.vi_start b.Images.vi_start) mm in
          let pages_off = Bytes.length img.Images.pages in
          let extra = Buffer.create 4096 in
          let new_entries =
            List.filter_map
              (fun (va, data) ->
                (* pages that were unmapped while undumped come back unpopulated *)
                if Bytes.length data < page_size then None
                else begin
                  let off = pages_off + Buffer.length extra in
                  Buffer.add_bytes extra data;
                  Some
                    { Images.pm_vaddr = va; pm_npages = Bytes.length data / page_size; pm_off = off }
                end)
              u_pages
          in
          {
            img with
            Images.mm;
            pagemap = img.Images.pagemap @ new_entries;
            pages = Bytes.cat img.Images.pages (Buffer.to_bytes extra);
          })
    img patches

(** Install/replace a sigaction in the core image (how DynaCut registers
    its injected handler: "modifies this file to add the signal handler
    address, restorer address ... into the SIGTRAP sigaction field",
    §3.3). *)
let set_sigaction (img : Images.t) ~signum ~handler ~restorer : Images.t =
  let core = img.Images.core in
  let others =
    List.filter (fun (s : Images.sigaction_img) -> s.Images.sg_signum <> signum) core.Images.c_sigactions
  in
  {
    img with
    Images.core =
      {
        core with
        Images.c_sigactions =
          others @ [ { Images.sg_signum = signum; sg_handler = handler; sg_restorer = restorer } ];
      };
  }

(** Install (or clear) a seccomp-style syscall denylist in the core
    image — "dynamically enabling/disabling seccomp filtering" from the
    paper's §5 list of process-rewriting applications. *)
let set_seccomp (img : Images.t) ~(denied : int list option) : Images.t =
  { img with Images.core = { img.Images.core with Images.c_seccomp = denied } }

(** Total number of bytes currently patched to [int3] in the journal —
    reporting helper. *)
let journal_bytes (j : journal) =
  List.fold_left
    (fun acc -> function
      | Bytes_patch { p_orig; _ } -> acc + Bytes.length p_orig
      | Unmap_patch { u_pages; _ } ->
          acc + List.fold_left (fun a (_, d) -> a + Bytes.length d) 0 u_pages)
    0 j.j_patches
