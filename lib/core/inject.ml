(** Shared-library injection into a checkpoint image (paper §3.3).

    "DynaCut's process rewriter parses the shared library and calculates
    the size of each ELF section. This is very similar to a traditional
    ELF loader, but DynaCut loads the shared binary and dynamically
    injects it into running processes."

    Steps, exactly as the paper describes:
    1. pick a base address — user-specified or a randomized-but-unused
       gap in the VMA space;
    2. perform global data relocations (library base + st_value) and
       PLT/GOT relocations (libc runtime base + symbol offset written
       into the library's GOT) — we reuse {!Loader.relocate}, which
       implements precisely those two rules;
    3. create the new VMAs in the [mm] image and append the pages to
       [pagemap]/[pages];
    4. (separately, {!Rewriter.set_sigaction}) register the handler in
       the core image. *)

exception Inject_error of string

let page_size = 4096
let page_align n = (n + page_size - 1) / page_size * page_size

let default_hint = 0x7fee_0000_0000L

(** Find an unused, page-aligned region of [size] bytes. [hint] seeds the
    search; pass a randomized hint for the paper's "randomized but unused
    location" default. *)
let find_gap (img : Images.t) ~(hint : int64) ~(size : int) : int64 =
  let overlaps base =
    List.exists
      (fun (v : Images.vma_img) ->
        let vend = Int64.add v.Images.vi_start (Int64.of_int v.Images.vi_len) in
        base < vend && v.Images.vi_start < Int64.add base (Int64.of_int size))
      img.Images.mm
  in
  let rec go base =
    if overlaps base then go (Int64.add base 0x10000L) else base
  in
  go hint

(** Inject [lib] into [img]. [deps] are already-loaded modules the
    library's extern (GOT) relocations resolve against — normally just
    [(libc_self, libc_base)]. Returns the updated image and the chosen
    base. *)
let inject (img : Images.t) ~(lib : Self.t) ?(base : int64 option)
    ~(deps : (Self.t * int64) list) () : Images.t * int64 =
  Fault.site "inject.lib";
  let size = Self.image_size lib in
  let base =
    match base with
    | Some b ->
        if Int64.rem b 4096L <> 0L then raise (Inject_error "base not page-aligned");
        b
    | None -> find_gap img ~hint:default_hint ~size
  in
  (* relocations: the lib itself + its dependencies *)
  let mods =
    { Loader.lm_name = lib.Self.name; lm_base = base; lm_self = lib }
    :: List.map
         (fun ((s : Self.t), b) -> { Loader.lm_name = s.Self.name; lm_base = b; lm_self = s })
         deps
  in
  let patched =
    try Loader.relocate lib ~base ~mods
    with Loader.Load_error e -> raise (Inject_error e)
  in
  (* new VMAs + pages *)
  let new_vmas =
    List.map
      (fun (s : Self.section) ->
        {
          Images.vi_start = Int64.add base (Int64.of_int s.Self.sec_off);
          vi_len = page_align (max 1 (Bytes.length s.Self.sec_data));
          vi_prot = Self.prot_to_int s.Self.sec_prot;
          vi_file = None (* injected pages are anonymous *);
          vi_name = lib.Self.name ^ ":" ^ s.Self.sec_name;
        })
      lib.Self.sections
  in
  (* check for collisions with existing VMAs *)
  List.iter
    (fun (nv : Images.vma_img) ->
      if
        List.exists
          (fun (v : Images.vma_img) ->
            let vend = Int64.add v.Images.vi_start (Int64.of_int v.Images.vi_len) in
            let nend = Int64.add nv.Images.vi_start (Int64.of_int nv.Images.vi_len) in
            nv.Images.vi_start < vend && v.Images.vi_start < nend)
          img.Images.mm
      then raise (Inject_error (Printf.sprintf "VMA collision at 0x%Lx" nv.Images.vi_start)))
    new_vmas;
  let pages_off = Bytes.length img.Images.pages in
  let extra = Buffer.create 8192 in
  let new_pm =
    List.map
      (fun (s : Self.section) ->
        let data = List.assoc s.Self.sec_name patched in
        let padded_len = page_align (max 1 (Bytes.length data)) in
        let padded = Bytes.make padded_len '\x00' in
        Bytes.blit data 0 padded 0 (Bytes.length data);
        let off = pages_off + Buffer.length extra in
        Buffer.add_bytes extra padded;
        {
          Images.pm_vaddr = Int64.add base (Int64.of_int s.Self.sec_off);
          pm_npages = padded_len / page_size;
          pm_off = off;
        })
      lib.Self.sections
  in
  let img' =
    {
      img with
      Images.mm =
        List.sort
          (fun a b -> compare a.Images.vi_start b.Images.vi_start)
          (img.Images.mm @ new_vmas);
      pagemap = img.Images.pagemap @ new_pm;
      pages = Bytes.cat img.Images.pages (Buffer.to_bytes extra);
    }
  in
  (img', base)

let lib_sym (lib : Self.t) ~(base : int64) name : int64 =
  match Self.find_symbol lib name with
  | Some s -> Int64.add base (Int64.of_int s.Self.sym_off)
  | None -> raise (Inject_error ("injected library lacks symbol " ^ name))

(** Patch the injected handler's policy area: mode word, table length,
    and the (trap address, payload) pairs the handler consults. *)
let write_policy (img : Images.t) ~(lib : Self.t) ~(base : int64)
    ~(mode : int64) ~(entries : (int64 * int64) list) : unit =
  Fault.site "inject.policy";
  if List.length entries > Handler.max_table_entries then
    raise (Inject_error "policy table overflow");
  let w64 addr v =
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 v;
    Images.write_mem img addr b
  in
  w64 (lib_sym lib ~base Handler.sym_mode) mode;
  w64 (lib_sym lib ~base Handler.sym_table_len) (Int64.of_int (List.length entries));
  let table = lib_sym lib ~base Handler.sym_table in
  List.iteri
    (fun k (trap, payload) ->
      w64 (Int64.add table (Int64.of_int (k * 16))) trap;
      w64 (Int64.add table (Int64.of_int ((k * 16) + 8))) payload)
    entries

(** Read back the handler's diagnostics from a *live* process (used by
    the verifier workflow and tests): hit count and the false-positive
    log. *)
let read_handler_state (p : Proc.t) ~(lib : Self.t) ~(base : int64) :
    int64 * int64 list =
  let r64 addr = Mem.read64 p.Proc.mem addr in
  let hits = r64 (lib_sym lib ~base Handler.sym_hits) in
  let n = Int64.to_int (r64 (lib_sym lib ~base Handler.sym_log_len)) in
  let log_base = lib_sym lib ~base Handler.sym_log in
  let log =
    List.init (min n Handler.max_log_entries) (fun k ->
        r64 (Int64.add log_base (Int64.of_int (8 * k))))
  in
  (hits, log)
