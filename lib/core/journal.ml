(** The crash-consistency journal: a durable write-ahead intent log for
    the cut transaction (DESIGN.md §5d).

    PR 1's "applied XOR unchanged" invariant only holds while the
    controller survives — the pristine map and stage progress live in
    its OCaml heap. This module puts both on storage: every state
    transition of a transaction appends a sealed, checksummed record
    (one {!Validate.seal} frame each) to [<tmpfs>/journal], so a fresh
    controller can reconstruct how far a dead one got and finish the
    job ([Dynacut.recover]).

    Records are written {e before} the action they announce (intent
    logging): a [Replaced pid] in the journal means the pid {e may}
    already run the rewritten image — never that a replaced pid went
    unrecorded.

    A sealed lock file at [<tmpfs>/lock] holds the owning controller's
    epoch — the fencing token. Appends verify the lock still carries
    the writer's epoch; recovery bumps the epoch first, so a controller
    that was presumed dead but wakes up mid-recovery gets {!Fenced} on
    its next append instead of corrupting the tree. *)

type op = Cut | Reenable

let op_to_string = function Cut -> "cut" | Reenable -> "reenable"

type record =
  | Begin of { txid : int; op : op; pids : int list }
      (** transaction opened; the tree is about to be frozen *)
  | Frozen of int  (** every pid of txid is frozen *)
  | Images_saved of int
      (** pristine + working images of every pid are sealed in tmpfs —
          from here on, rollback-by-pristine-restore is always possible *)
  | Rewritten of int  (** all image edits validated; restore is next *)
  | Replaced of { txid : int; pid : int }
      (** [pid] is about to be reaped and re-created from the rewritten
          image (intent — logged before the reap) *)
  | Commit of int  (** every pid runs the rewritten image *)
  | Abort of int  (** the controller finished rolling the tree back *)
  | Respawn_begin of { pid : int; path : string }
      (** supervisor respawn: [pid] is about to be re-created from the
          image at [path] *)
  | Respawn_done of { pid : int }
      (** the controller regained control after [Respawn_begin] (the
          respawn landed, or failed with the controller alive) *)

type t = { fs : Vfs.t; dir : string }

exception
  Fenced of { epoch : int; lock_epoch : int }
      (** the lock no longer carries this controller's epoch: a newer
          controller (or recovery pass) fenced it out *)

exception
  Busy of { txid : int }
      (** the journal holds an unfinished transaction — the tree needs
          [dynacut recover] before anyone cuts it again *)

let attach (fs : Vfs.t) ~(dir : string) : t = { fs; dir }
let journal_path t = t.dir ^ "/journal"
let lock_path t = t.dir ^ "/lock"

(* ---------- record codec ---------- *)

let encode_record (r : record) : string =
  let open Bytesx.W in
  let b = create ~size:64 () in
  (match r with
  | Begin { txid; op; pids } ->
      u8 b 1;
      int_as_u64 b txid;
      u8 b (match op with Cut -> 0 | Reenable -> 1);
      u32 b (List.length pids);
      List.iter (fun pid -> u32 b pid) pids
  | Frozen txid ->
      u8 b 2;
      int_as_u64 b txid
  | Images_saved txid ->
      u8 b 3;
      int_as_u64 b txid
  | Rewritten txid ->
      u8 b 4;
      int_as_u64 b txid
  | Replaced { txid; pid } ->
      u8 b 5;
      int_as_u64 b txid;
      u32 b pid
  | Commit txid ->
      u8 b 6;
      int_as_u64 b txid
  | Abort txid ->
      u8 b 7;
      int_as_u64 b txid
  | Respawn_begin { pid; path } ->
      u8 b 8;
      u32 b pid;
      lstring b path
  | Respawn_done { pid } ->
      u8 b 9;
      u32 b pid);
  contents b

(* raises on garbage; [read] turns that into a torn tail *)
let decode_record (payload : string) : record =
  let open Bytesx.R in
  let r = of_string payload in
  match u8 r with
  | 1 ->
      let txid = int_of_u64 r in
      let op = match u8 r with 0 -> Cut | 1 -> Reenable | _ -> failwith "bad op" in
      let n = u32 r in
      let pids = List.init n (fun _ -> u32 r) in
      Begin { txid; op; pids }
  | 2 -> Frozen (int_of_u64 r)
  | 3 -> Images_saved (int_of_u64 r)
  | 4 -> Rewritten (int_of_u64 r)
  | 5 ->
      let txid = int_of_u64 r in
      Replaced { txid; pid = u32 r }
  | 6 -> Commit (int_of_u64 r)
  | 7 -> Abort (int_of_u64 r)
  | 8 ->
      let pid = u32 r in
      Respawn_begin { pid; path = lstring r }
  | 9 -> Respawn_done { pid = u32 r }
  | tag -> failwith (Printf.sprintf "bad journal record tag %d" tag)

let pp_record fmt (r : record) =
  match r with
  | Begin { txid; op; pids } ->
      Format.fprintf fmt "begin tx=%d op=%s pids=[%s]" txid (op_to_string op)
        (String.concat ";" (List.map string_of_int pids))
  | Frozen txid -> Format.fprintf fmt "frozen tx=%d" txid
  | Images_saved txid -> Format.fprintf fmt "images-saved tx=%d" txid
  | Rewritten txid -> Format.fprintf fmt "rewritten tx=%d" txid
  | Replaced { txid; pid } -> Format.fprintf fmt "replaced tx=%d pid=%d" txid pid
  | Commit txid -> Format.fprintf fmt "commit tx=%d" txid
  | Abort txid -> Format.fprintf fmt "abort tx=%d" txid
  | Respawn_begin { pid; path } ->
      Format.fprintf fmt "respawn-begin pid=%d path=%s" pid path
  | Respawn_done { pid } -> Format.fprintf fmt "respawn-done pid=%d" pid

(* ---------- reading ---------- *)

(** The journal's valid prefix, in append order, plus whether the tail
    was torn (truncated write or corruption — both are survivable; the
    prefix is authoritative). Never raises. *)
let read (t : t) : record list * bool =
  match Vfs.find t.fs (journal_path t) with
  | None -> ([], false)
  | Some blob ->
      let payloads, tear = Validate.unseal_frames blob in
      (match tear with
      | Some t ->
          Obs.event ~kind:"journal"
            (Format.asprintf "torn tail: %a" Validate.pp_tear t)
      | None -> ());
      let rec decode acc = function
        | [] -> (List.rev acc, tear <> None)
        | p :: rest -> (
            match decode_record p with
            | r -> decode (r :: acc) rest
            | exception _ -> (List.rev acc, true))
      in
      decode [] payloads

(* ---------- the lock / fencing token ---------- *)

(** Epoch in the lock file; 0 when absent or unreadable (an unreadable
    lock is treated like a missing one — any recovery bumps past it). *)
let lock_epoch (t : t) : int =
  match Vfs.find t.fs (lock_path t) with
  | None -> 0
  | Some blob -> (
      match Validate.unseal blob with
      | payload -> (
          match Bytesx.R.int_of_u64 (Bytesx.R.of_string payload) with
          | e -> max e 0
          | exception _ -> 0)
      | exception Validate.Validate_error _ -> 0)

(** Stamp the lock with [epoch], unconditionally — recovery's fencing
    move. Transaction paths use {!acquire}. *)
let write_lock (t : t) ~(epoch : int) : unit =
  Obs.with_span "journal.lock" @@ fun () ->
  Fault.site "journal.lock";
  let open Bytesx.W in
  let b = create ~size:16 () in
  int_as_u64 b epoch;
  Vfs.add t.fs (lock_path t) (Validate.seal_at ~site:"journal.lock" (contents b))

(** Take (or refresh) the lock for [epoch]; raises {!Fenced} when a
    newer epoch already holds it. *)
let acquire (t : t) ~(epoch : int) : unit =
  let held = lock_epoch t in
  if held > epoch then raise (Fenced { epoch; lock_epoch = held });
  write_lock t ~epoch

(* ---------- appending ---------- *)

(** Append one sealed record; verifies the lock still carries [epoch]
    first (raises {!Fenced} otherwise — a fenced controller must stop,
    not write). *)
let append (t : t) ~(epoch : int) (r : record) : unit =
  Obs.with_span "journal.append" @@ fun () ->
  Fault.site "journal.append";
  let held = lock_epoch t in
  if held <> epoch then raise (Fenced { epoch; lock_epoch = held });
  let prev = Option.value ~default:"" (Vfs.find t.fs (journal_path t)) in
  Vfs.add t.fs (journal_path t)
    (prev ^ Validate.seal_at ~site:"journal.append" (encode_record r));
  Obs.event ~kind:"journal" (Format.asprintf "%a" pp_record r)

(** Remove the journal file only (recovery keeps its bumped lock behind
    as a fence). *)
let clear (t : t) : unit =
  if Vfs.exists t.fs (journal_path t) then Vfs.remove t.fs (journal_path t)

(** Remove journal and lock — a transaction's clean finish. *)
let finish (t : t) : unit =
  clear t;
  if Vfs.exists t.fs (lock_path t) then Vfs.remove t.fs (lock_path t)

(* ---------- summarizing ---------- *)

type tx_state = {
  tx_id : int;
  tx_op : op;
  tx_pids : int list;
  tx_frozen : bool;
  tx_images_saved : bool;
  tx_rewritten : bool;
  tx_replaced : int list;  (** pids with a [Replaced] intent, oldest first *)
  tx_closed : bool;  (** [Commit] or [Abort] logged *)
}

type summary = {
  s_tx : tx_state option;  (** the journal's last transaction, if any *)
  s_respawns : (int * string) list;
      (** [Respawn_begin]s without a matching [Respawn_done], oldest
          first — the controller died mid-respawn *)
}

let summarize (records : record list) : summary =
  let tx = ref None and respawns = ref [] in
  let with_tx f = match !tx with None -> () | Some t -> tx := Some (f t) in
  List.iter
    (fun r ->
      match r with
      | Begin { txid; op; pids } ->
          tx :=
            Some
              {
                tx_id = txid;
                tx_op = op;
                tx_pids = pids;
                tx_frozen = false;
                tx_images_saved = false;
                tx_rewritten = false;
                tx_replaced = [];
                tx_closed = false;
              }
      | Frozen _ -> with_tx (fun t -> { t with tx_frozen = true })
      | Images_saved _ -> with_tx (fun t -> { t with tx_images_saved = true })
      | Rewritten _ -> with_tx (fun t -> { t with tx_rewritten = true })
      | Replaced { pid; _ } ->
          with_tx (fun t ->
              if List.mem pid t.tx_replaced then t
              else { t with tx_replaced = t.tx_replaced @ [ pid ] })
      | Commit _ | Abort _ -> with_tx (fun t -> { t with tx_closed = true })
      | Respawn_begin { pid; path } -> respawns := (pid, path) :: !respawns
      | Respawn_done { pid } ->
          respawns := List.filter (fun (p, _) -> p <> pid) !respawns)
    records;
  { s_tx = !tx; s_respawns = List.rev !respawns }

(** A quiescent journal needs no recovery: every transaction closed,
    every respawn matched. (An absent journal is trivially quiescent.) *)
let quiescent (s : summary) : bool =
  s.s_respawns = [] && (match s.s_tx with None -> true | Some t -> t.tx_closed)

(** The fleet manifest: a second intent log, one per {e fleet} rather
    than per tree, recording rollout progress across workers so a crash
    mid-rollout can be replayed back to a uniform fleet (per-worker cut
    state itself is covered by each worker's own journal; the manifest
    records which workers a wave {e intended} to cut). Same sealed-frame
    format, longest-valid-prefix reads. *)
module Manifest = struct
  type entry =
    | Wave_begin of { wave : int; pids : int list }
        (** wave [wave] is about to start cutting [pids] *)
    | Worker_cut of { wave : int; pid : int }
        (** [pid]'s cut transaction committed as part of [wave] *)
    | Wave_done of { wave : int }  (** every pid of the wave is cut *)
    | Rollout_halted of { wave : int }
        (** the rollout stopped at [wave] (canary rejected / SLO breach)
            and the wave's partial cuts were reverted *)
    | Rollout_done of { waves : int }  (** all [waves] waves committed *)
    | Checkpoint of { completed : int list; halted : int option; done_ : bool }
        (** compaction record: the summary of everything before it, so
            the append-only manifest can be rewritten as one entry *)

  type t = { fs : Vfs.t; path : string }

  let attach (fs : Vfs.t) ~(dir : string) : t = { fs; path = dir ^ "/manifest" }

  let encode_entry (e : entry) : string =
    let open Bytesx.W in
    let b = create ~size:32 () in
    (match e with
    | Wave_begin { wave; pids } ->
        u8 b 1;
        u32 b wave;
        u32 b (List.length pids);
        List.iter (fun pid -> u32 b pid) pids
    | Worker_cut { wave; pid } ->
        u8 b 2;
        u32 b wave;
        u32 b pid
    | Wave_done { wave } ->
        u8 b 3;
        u32 b wave
    | Rollout_halted { wave } ->
        u8 b 4;
        u32 b wave
    | Rollout_done { waves } ->
        u8 b 5;
        u32 b waves
    | Checkpoint { completed; halted; done_ } ->
        u8 b 6;
        u32 b (List.length completed);
        List.iter (fun w -> u32 b w) completed;
        u8 b (match halted with Some _ -> 1 | None -> 0);
        u32 b (match halted with Some w -> w | None -> 0);
        u8 b (if done_ then 1 else 0));
    contents b

  let decode_entry (payload : string) : entry =
    let open Bytesx.R in
    let r = of_string payload in
    match u8 r with
    | 1 ->
        let wave = u32 r in
        let n = u32 r in
        Wave_begin { wave; pids = List.init n (fun _ -> u32 r) }
    | 2 ->
        let wave = u32 r in
        Worker_cut { wave; pid = u32 r }
    | 3 -> Wave_done { wave = u32 r }
    | 4 -> Rollout_halted { wave = u32 r }
    | 5 -> Rollout_done { waves = u32 r }
    | 6 ->
        let n = u32 r in
        let completed = List.init n (fun _ -> u32 r) in
        let has_halted = u8 r in
        let halted_wave = u32 r in
        let done_ = u8 r = 1 in
        Checkpoint
          {
            completed;
            halted = (if has_halted = 1 then Some halted_wave else None);
            done_;
          }
    | tag -> failwith (Printf.sprintf "bad manifest entry tag %d" tag)

  let pp_entry fmt (e : entry) =
    match e with
    | Wave_begin { wave; pids } ->
        Format.fprintf fmt "wave-begin wave=%d pids=[%s]" wave
          (String.concat ";" (List.map string_of_int pids))
    | Worker_cut { wave; pid } ->
        Format.fprintf fmt "worker-cut wave=%d pid=%d" wave pid
    | Wave_done { wave } -> Format.fprintf fmt "wave-done wave=%d" wave
    | Rollout_halted { wave } ->
        Format.fprintf fmt "rollout-halted wave=%d" wave
    | Rollout_done { waves } ->
        Format.fprintf fmt "rollout-done waves=%d" waves
    | Checkpoint { completed; halted; done_ } ->
        Format.fprintf fmt "checkpoint completed=[%s] halted=%s done=%b"
          (String.concat ";" (List.map string_of_int completed))
          (match halted with Some w -> string_of_int w | None -> "-")
          done_

  (** Append one sealed entry. Fault site [fleet.manifest] — a storage
      write like [Journal.append], with the same corruption point. *)
  let append (t : t) (e : entry) : unit =
    Fault.site "fleet.manifest";
    let prev = Option.value ~default:"" (Vfs.find t.fs t.path) in
    Vfs.add t.fs t.path (prev ^ Validate.seal_at ~site:"fleet.manifest" (encode_entry e));
    Obs.event ~kind:"manifest" (Format.asprintf "%a" pp_entry e)

  (** Longest valid prefix + torn flag; never raises. *)
  let read (t : t) : entry list * bool =
    match Vfs.find t.fs t.path with
    | None -> ([], false)
    | Some blob ->
        let payloads, tear = Validate.unseal_frames blob in
        (match tear with
        | Some t ->
            Obs.event ~kind:"manifest"
              (Format.asprintf "torn tail: %a" Validate.pp_tear t)
        | None -> ());
        let rec decode acc = function
          | [] -> (List.rev acc, tear <> None)
          | p :: rest -> (
              match decode_entry p with
              | e -> decode (e :: acc) rest
              | exception _ -> (List.rev acc, true))
        in
        decode [] payloads

  let clear (t : t) : unit =
    if Vfs.exists t.fs t.path then Vfs.remove t.fs t.path

  type summary = {
    m_completed : int list;  (** waves with [Wave_done], oldest first *)
    m_open : (int * int list * int list) option;
        (** a [Wave_begin] without [Wave_done]/[Rollout_halted]:
            (wave, planned pids, pids with a [Worker_cut]) *)
    m_halted : int option;  (** rollout halted at this wave *)
    m_done : bool;  (** [Rollout_done] logged *)
  }

  let summarize (entries : entry list) : summary =
    let completed = ref [] in
    let open_ = ref None in
    let halted = ref None in
    let done_ = ref false in
    List.iter
      (fun e ->
        match e with
        | Wave_begin { wave; pids } -> open_ := Some (wave, pids, [])
        | Worker_cut { wave; pid } -> (
            match !open_ with
            | Some (w, planned, cut) when w = wave ->
                open_ := Some (w, planned, cut @ [ pid ])
            | _ -> ())
        | Wave_done { wave } ->
            completed := !completed @ [ wave ];
            (match !open_ with
            | Some (w, _, _) when w = wave -> open_ := None
            | _ -> ())
        | Rollout_halted { wave } ->
            halted := Some wave;
            open_ := None
        | Rollout_done _ -> done_ := true
        | Checkpoint { completed = c; halted = h; done_ = d } ->
            (* a checkpoint replaces everything before it *)
            completed := c;
            halted := h;
            done_ := d;
            open_ := None)
      entries;
    { m_completed = !completed; m_open = !open_; m_halted = !halted; m_done = !done_ }

  (** Rewrite the manifest as one {!Checkpoint} summarizing the longest
      valid prefix — plus, when a wave is still open, the open wave's
      [Wave_begin]/[Worker_cut] records verbatim so crash recovery can
      still unwind it. Torn-tail tolerant by construction: compaction
      reads with {!read}, so a torn suffix is simply dropped, and the
      rewritten file is fully sealed again. *)
  let compact (t : t) : unit =
    let entries, torn = read t in
    let s = summarize entries in
    let tail =
      match s.m_open with
      | None -> []
      | Some (wave, planned, cut) ->
          Wave_begin { wave; pids = planned }
          :: List.map (fun pid -> Worker_cut { wave; pid }) cut
    in
    let entries' =
      Checkpoint
        { completed = s.m_completed; halted = s.m_halted; done_ = s.m_done }
      :: tail
    in
    Vfs.add t.fs t.path
      (String.concat "" (List.map (fun e -> Validate.seal (encode_entry e)) entries'));
    Obs.event ~kind:"manifest"
      (Printf.sprintf "compacted %d entries -> %d%s" (List.length entries)
         (List.length entries')
         (if torn then " (torn tail dropped)" else ""))
end
