(** tracediff — undesired code-block identification (paper §3.1,
    Figure 4). *)

type report = {
  undesired : Covgraph.block list;  (** blocks safe to disable *)
  n_undesired_raw : int;  (** candidate count before module filtering *)
  n_wanted : int;  (** size of the wanted coverage *)
  n_total_undesired_cov : int;  (** size of the undesired coverage *)
}

val no_cfg : string -> Cfg.t option
(** The identity CFG provider (no normalization). *)

val feature_blocks :
  ?keep_module:(string -> bool) ->
  ?cfg_of:(string -> Cfg.t option) ->
  wanted:Drcov.log list ->
  undesired:Drcov.log list ->
  unit ->
  report
(** Feature identification: [blk ∈ CovG_undesired ∧ blk ∉ CovG_wanted].
    Multiple logs per side merge first. [keep_module] defaults to
    dropping [*.so] modules; [cfg_of] enables sound static-block
    canonicalization (recommended for any wipe policy). *)

val init_blocks :
  ?keep_module:(string -> bool) ->
  ?cfg_of:(string -> Cfg.t option) ->
  init:Drcov.log ->
  serving:Drcov.log ->
  unit ->
  report
(** Initialization-only identification from the two nudge-protocol dumps:
    [blk ∈ CovG_init ∧ blk ∉ CovG_serving]. *)

type slice_report = {
  sliced : Covgraph.block list;  (** covered blocks outside every slice *)
  n_covered : int;  (** serving coverage size after module filtering *)
  n_slice_points : int;
}

val sliced_away :
  ?keep_module:(string -> bool) ->
  ?cfg_of:(string -> Cfg.t option) ->
  covered:Drcov.log list ->
  in_slice:(string * int * int) list ->
  unit ->
  slice_report
(** The third candidate class: covered blocks no wanted-output slice
    touches. [in_slice] is the dataflow slicer's output as plain
    (module, offset, extent) spans; a block is in the slice iff some
    span overlaps its byte range. Refines {!feature_blocks}: these
    blocks ran under wanted requests but contributed to no wanted
    output. *)

val pp_slice_report : Format.formatter -> slice_report -> unit

val pp_report : Format.formatter -> report -> unit
