(** Memory-integrity scrubbing and page-level self-healing: the defense
    against {e silent} corruption ([Fault.Bitflip]) that no checksum seal
    catches, because it lands in resident mapped pages rather than on a
    storage write.

    A baseline manifest records the expected digest (and a snapshot) of
    every resident page in the tree's immutable — non-writable — VMAs:
    text, rodata, and the injected handler library. The baseline is
    captured {e live}, so it reflects exactly what the loader and the
    committed cut edits left in memory. An incremental scrubber walks a
    bounded number of pages per call (rotating a cursor, skipping pages
    whose write generation is unchanged) and reports digest mismatches
    as findings; {!repair} then heals a diverged page from the best
    still-trusted source: the working image, the pristine image with the
    committed rewrite deltas re-applied, the backing binary, or the
    baseline snapshot — each candidate is digest-validated before any
    byte is poked. Escalation policy (quarantine, respawn) lives above,
    in the fleet layer.

    All scrub work is charged to the machine's virtual clock under a
    local cost model, so detection latency, scrub overhead and the
    repair-vs-respawn economics are measurable in the same deterministic
    unit as everything else. *)

type t

type finding = {
  f_pid : int;
  f_vaddr : int64;  (** page base of the diverged page *)
  f_expected : int64;  (** baseline digest *)
  f_found : int64;  (** digest observed by the scrubber *)
}

val pp_finding : Format.formatter -> finding -> unit

type repair_outcome =
  | Repaired of string
      (** healed; the payload names the source that reproduced the
          expected digest: ["working"], ["pristine"], ["file"] or
          ["snapshot"] *)
  | Repair_failed of string
      (** no source reproduced the expected digest — escalate *)

(** {2 Virtual-cost model (cycles charged to the machine clock)} *)

val cost_skip : int
(** per page whose write generation is unchanged (dirty-bit check) *)

val cost_hash : int
(** per page actually digested *)

val cost_repair : int
(** per page-level repair attempt (image decode + validate + poke) *)

val cost_respawn_fixed : int
val cost_respawn_page : int
(** full-respawn cost: fixed + per baseline page — what escalation pays
    instead of a page repair (see {!respawn_cost}) *)

(** {2 Lifecycle} *)

val create : Dynacut.session -> t
(** An empty scrubber for the session's tree; baselines are captured
    lazily at the first {!scrub} (or explicitly via {!rebaseline}). *)

val rebaseline : t -> pid:int -> unit
(** (Re)capture [pid]'s baseline from its live pages — required after
    any legitimate mutation of immutable pages outside the transaction
    engine. A dead pid's manifest is dropped instead. Scrubs detect
    restored processes themselves (a restore installs a fresh page
    table, which marks the manifest stale) and rebaseline automatically. *)

val drop_pid : t -> pid:int -> unit
val tracked_pids : t -> int list

val pages_tracked : t -> int
(** Total baseline pages across all manifests. *)

(** {2 Scrubbing} *)

val scrub : t -> ?pids:int list -> quantum:int -> unit -> finding list
(** Audit up to [quantum] pages, continuing from the rotation cursor
    ([?pids] defaults to the session's tree). Stale or missing manifests
    are refreshed first; each page audit passes the fault site
    [scrub.page] (scoped to the owning pid). Returns the digest
    mismatches found — detection only; pair with {!repair}. *)

val scrub_full : t -> ?pids:int list -> unit -> finding list
(** One full pass over every tracked page — the forced audit behind
    [dynacut scrub] and the chaos probes. *)

val recheck : t -> finding -> bool
(** Digest the finding's page again — [true] if it now matches the
    baseline (used post-repair, and to detect re-divergence). *)

(** {2 Repair} *)

val repair : t -> finding -> repair_outcome
(** Heal one diverged page in place (fault site [integrity.repair],
    scoped to the pid): candidates are tried in trust order — working
    image, pristine image + committed rewrite deltas, backing binary,
    baseline snapshot — and the first whose digest matches the baseline
    is poked over the live page. *)

val respawn_cost : t -> pid:int -> int
(** What a full respawn of [pid] costs under the model — the price
    escalation pays when page repair fails. *)

val charge_respawn : t -> pid:int -> unit
(** Charge {!respawn_cost} to the machine clock (called by the fleet
    layer when it escalates to [Restore.respawn]). *)
