(** Post-cut supervision: canary rollouts, trap-storm circuit breaker,
    crash-loop respawn, verifier feedback. See supervisor.mli. *)

type config = {
  window : int64;
  max_traps : int;
  half_open_max_traps : int;
  critical : bool;
  cooldown : int64;
  max_trips : int;
  max_respawns : int;
  canary_windows : int;
}

let default_config =
  {
    window = 50_000L;
    max_traps = 3;
    half_open_max_traps = 0;
    critical = false;
    cooldown = 100_000L;
    max_trips = 3;
    max_respawns = 5;
    canary_windows = 2;
  }

type breaker = Closed | Open of int64 | Half_open of int64 | Abandoned

let pp_breaker ppf = function
  | Closed -> Format.fprintf ppf "closed"
  | Open until -> Format.fprintf ppf "open(until=%Ld)" until
  | Half_open since -> Format.fprintf ppf "half-open(since=%Ld)" since
  | Abandoned -> Format.fprintf ppf "abandoned"

type event_kind =
  | Cut_applied of int list
  | Canary_cut of int
  | Canary_promoted of int list
  | Canary_rejected of { pid : int; traps : int }
  | Promotion_failed of string
  | Breaker_tripped of { traps : int; trip : int }
  | Reenabled
  | Reenable_failed of string
  | Half_open_probe
  | Probe_recut of int list
  | Probe_failed of string
  | Breaker_closed
  | Abandoned_cut
  | Respawned of { pid : int; deaths : int }
  | Respawn_failed of { pid : int; error : string }
  | Respawn_capped of int
  | Verifier_shrunk of { dropped : int; kept : int }

type event = { e_clock : int64; e_kind : event_kind }

let pp_pids ppf pids =
  Format.fprintf ppf "[%s]"
    (String.concat ";" (List.map string_of_int (List.sort compare pids)))

let pp_event_kind ppf = function
  | Cut_applied pids -> Format.fprintf ppf "cut-applied %a" pp_pids pids
  | Canary_cut pid -> Format.fprintf ppf "canary-cut pid=%d" pid
  | Canary_promoted pids -> Format.fprintf ppf "canary-promoted %a" pp_pids pids
  | Canary_rejected { pid; traps } ->
      Format.fprintf ppf "canary-rejected pid=%d traps=%d" pid traps
  | Promotion_failed why -> Format.fprintf ppf "promotion-failed %s" why
  | Breaker_tripped { traps; trip } ->
      Format.fprintf ppf "breaker-tripped traps=%d trip=%d" traps trip
  | Reenabled -> Format.fprintf ppf "reenabled"
  | Reenable_failed why -> Format.fprintf ppf "reenable-failed %s" why
  | Half_open_probe -> Format.fprintf ppf "half-open-probe"
  | Probe_recut pids -> Format.fprintf ppf "probe-recut %a" pp_pids pids
  | Probe_failed why -> Format.fprintf ppf "probe-failed %s" why
  | Breaker_closed -> Format.fprintf ppf "breaker-closed"
  | Abandoned_cut -> Format.fprintf ppf "abandoned"
  | Respawned { pid; deaths } ->
      Format.fprintf ppf "respawned pid=%d deaths=%d" pid deaths
  | Respawn_failed { pid; error } ->
      Format.fprintf ppf "respawn-failed pid=%d %s" pid error
  | Respawn_capped pid -> Format.fprintf ppf "respawn-capped pid=%d" pid
  | Verifier_shrunk { dropped; kept } ->
      Format.fprintf ppf "verifier-shrunk dropped=%d kept=%d" dropped kept

let pp_event ppf e =
  Format.fprintf ppf "@[<h>%10Ld %a@]" e.e_clock pp_event_kind e.e_kind

type rollout = R_promoted | R_canary_rejected | R_promotion_failed | R_rolled_back of string

let pp_rollout ppf = function
  | R_promoted -> Format.fprintf ppf "promoted"
  | R_canary_rejected -> Format.fprintf ppf "canary-rejected"
  | R_promotion_failed -> Format.fprintf ppf "promotion-failed"
  | R_rolled_back stage -> Format.fprintf ppf "rolled-back(%s)" stage

type t = {
  session : Dynacut.session;
  cfg : config;
  mutable blocks : Covgraph.block list;
  policy : Dynacut.policy;
  mutable journals : Rewriter.journal list;
  mutable cut_pids : int list;  (** pids currently carrying the cut *)
  mutable breaker : breaker;
  mutable trips : int;
  mutable samples : (int64 * int) list;  (** (clock, trap delta), newest first *)
  mutable last_raw : (int * int64) list;  (** per-pid trap-counter baseline *)
  mutable deaths : int list;  (** exit-hook queue, oldest first *)
  mutable respawns : (int * int) list;  (** per-pid respawn count *)
  mutable capped : int list;  (** pids whose respawn budget ran out *)
  mutable supervised : int list;
  mutable events : event list;  (** newest first *)
}

let clock t = t.session.Dynacut.machine.Machine.clock

(* every supervisor decision is mirrored into the unified event ring
   (same clock stamp as the private log, so the two replay identically),
   and the decisions `top` summarizes also bump registry counters *)
let emit t kind =
  t.events <- { e_clock = clock t; e_kind = kind } :: t.events;
  if Obs.enabled () then begin
    Obs.event ~kind:"supervisor" (Format.asprintf "%a" pp_event_kind kind);
    match kind with
    | Breaker_tripped _ -> Obs.incr (Obs.counter "supervisor.trips")
    | Respawned { pid; _ } ->
        Obs.incr
          (Obs.counter ~labels:[ ("pid", string_of_int pid) ]
             "supervisor.respawns")
    | _ -> ()
  end

let breaker_code = function
  | Closed -> 0.
  | Open _ -> 1.
  | Half_open _ -> 2.
  | Abandoned -> 3.

(* the per-pid series is the balancer's readback channel: a fleet
   dispatcher reads breaker state per worker root without holding a
   Supervisor handle (DESIGN.md §6b) *)
let breaker_gauge ~root_pid =
  Obs.gauge ~labels:[ ("pid", string_of_int root_pid) ] "supervisor.breaker"

let set_breaker t b =
  t.breaker <- b;
  Obs.set_gauge (Obs.gauge "supervisor.breaker") (breaker_code b);
  Obs.set_gauge
    (breaker_gauge ~root_pid:t.session.Dynacut.root_pid)
    (breaker_code b)

let event_log t = List.rev t.events

let render_log t =
  String.concat "\n"
    (List.map (fun e -> Format.asprintf "%a" pp_event e) (event_log t))

let breaker_state t = t.breaker
let trips t = t.trips
let journals t = t.journals
let blocks t = t.blocks
let cut_live t = t.journals <> []

let create (s : Dynacut.session) ~config ~blocks ~policy =
  let t =
    {
      session = s;
      cfg = config;
      blocks;
      policy;
      journals = [];
      cut_pids = [];
      breaker = Closed;
      trips = 0;
      samples = [];
      last_raw = [];
      deaths = [];
      respawns = [];
      capped = [];
      supervised = Dynacut.tree_pids s;
      events = [];
    }
  in
  let m = s.Dynacut.machine in
  let prev = m.Machine.on_exit in
  m.Machine.on_exit <-
    Some
      (fun p ->
        (match prev with Some hook -> hook p | None -> ());
        let pid = p.Proc.pid in
        if List.mem pid t.supervised || List.mem p.Proc.parent t.supervised
        then begin
          if not (List.mem pid t.supervised) then
            t.supervised <- pid :: t.supervised;
          t.deaths <- t.deaths @ [ pid ]
        end);
  t

(* ------------------------------------------------------------------ *)
(* Trap sampling                                                       *)

let raw_hits t pid = Dynacut.handler_hits t.session ~pid

(** Reset-tolerant delta: a respawn from an image restores the guest
    counter to its checkpointed value, which may be below the baseline —
    treat the raw value as the delta then. *)
let trap_delta t pid =
  let raw = raw_hits t pid in
  let last = try List.assoc pid t.last_raw with Not_found -> 0L in
  let d = if raw >= last then Int64.sub raw last else raw in
  t.last_raw <- (pid, raw) :: List.remove_assoc pid t.last_raw;
  Int64.to_int d

let rebaseline t pids =
  t.last_raw <- List.map (fun pid -> (pid, raw_hits t pid)) pids;
  t.samples <- []

(** A death the respawner should handle: killed by a trap-family signal
    (un-redirected SIGTRAP, SIGILL on wiped bytes, SIGSEGV on unmapped
    pages, SIGSYS from seccomp) or exited through the handler's
    [`Terminate] status. Normal exits are final. *)
let respawnable_death (p : Proc.t) =
  match p.Proc.state with
  | Proc.Killed n ->
      n = Abi.sigtrap || n = Abi.sigill || n = Abi.sigsegv || n = Abi.sigsys
  | Proc.Exited code -> code = Handler.blocked_exit_status
  | Proc.Runnable | Proc.Blocked _ -> false

(** Traps implied by a death (counts toward the SLO window even under
    [`Kill], where no handler runs to bump the counter). *)
let death_traps t pids =
  List.fold_left
    (fun acc pid ->
      match Machine.proc t.session.Dynacut.machine pid with
      | Some p when respawnable_death p -> acc + 1
      | _ -> acc)
    0 pids

let sample t =
  let live =
    List.filter
      (fun pid ->
        match Machine.proc t.session.Dynacut.machine pid with
        | Some p -> Proc.is_live p
        | None -> false)
      t.cut_pids
  in
  let traps = List.fold_left (fun acc pid -> acc + trap_delta t pid) 0 live in
  let traps = traps + death_traps t t.deaths in
  let now = clock t in
  t.samples <- (now, traps) :: t.samples;
  let horizon = Int64.sub now t.cfg.window in
  t.samples <- List.filter (fun (c, _) -> c >= horizon) t.samples;
  List.fold_left (fun acc (_, n) -> acc + n) 0 t.samples

let breached t ~limit traps = traps > limit || (t.cfg.critical && traps > 0)

(* ------------------------------------------------------------------ *)
(* Crash-loop respawn                                                  *)

let backoff_cycles n = Int64.of_int (min (1 lsl n) 64 * 1_000)

let live_pids t pids =
  List.filter
    (fun pid ->
      match Machine.proc t.session.Dynacut.machine pid with
      | Some p -> Proc.is_live p
      | None -> false)
    pids

(** Respawn one dead supervised worker from its checkpoint image: the
    working image if the pid carries the cut (so the cut is re-applied
    for free), the pristine image otherwise. Returns [false] if the
    death should be retried on the next tick. *)
let respawn_one t pid =
  let m = t.session.Dynacut.machine in
  match Machine.proc m pid with
  | None -> true
  | Some p when Proc.is_live p -> true  (* already back (e.g. probe re-cut restored it) *)
  | Some p when not (respawnable_death p) -> true
  | Some _ ->
      if List.mem pid t.capped then true
      else begin
        let n = (try List.assoc pid t.respawns with Not_found -> 0) in
        if n >= t.cfg.max_respawns then begin
          t.capped <- pid :: t.capped;
          emit t (Respawn_capped pid);
          true
        end
        else begin
          (* exponential backoff, charged to the virtual clock *)
          m.Machine.clock <- Int64.add m.Machine.clock (backoff_cycles n);
          let path =
            if List.mem pid t.cut_pids && cut_live t then
              Dynacut.image_path t.session pid
            else Dynacut.pristine_path t.session pid
          in
          (* journaled: a controller death between the intent and the
             new process is redone by [Dynacut.recover] *)
          match Dynacut.journaled_respawn t.session ~pid ~path with
          | exception (Fault.Injected { site; _ } as e) ->
              ignore site;
              emit t
                (Respawn_failed { pid; error = Printexc.to_string e });
              t.respawns <- (pid, n + 1) :: List.remove_assoc pid t.respawns;
              false
          | exception Restore.Restore_error msg ->
              emit t (Respawn_failed { pid; error = msg });
              t.respawns <- (pid, n + 1) :: List.remove_assoc pid t.respawns;
              false
          | (_ : Proc.t) ->
              (if not (List.mem pid t.cut_pids && cut_live t) then
                 (* restored pristine: stale policy entries would poison
                    the next transaction *)
                 Dynacut.forget_pid t.session ~pid);
              t.respawns <- (pid, n + 1) :: List.remove_assoc pid t.respawns;
              (* the image's counter replaces the live one *)
              t.last_raw <- (pid, raw_hits t pid) :: List.remove_assoc pid t.last_raw;
              emit t (Respawned { pid; deaths = n + 1 });
              true
        end
      end

let handle_deaths t =
  let pending = t.deaths in
  (* consumed below; sample already charged their traps this tick *)
  t.deaths <- [];
  List.iter
    (fun pid -> if not (respawn_one t pid) then t.deaths <- t.deaths @ [ pid ])
    pending

(* ------------------------------------------------------------------ *)
(* Breaker transitions                                                 *)

(** Re-enable the cut on every live pid that carries it (fault site
    [supervisor.reenable]). Returns [false] if the attempt failed — the
    caller leaves the breaker as-is and retries next tick. *)
let attempt_reenable t =
  match
    Fault.site "supervisor.reenable";
    Dynacut.try_reenable t.session ~pids:(live_pids t t.cut_pids) t.journals
  with
  | exception Fault.Injected _ ->
      emit t (Reenable_failed "fault at supervisor.reenable");
      false
  | { Dynacut.r_outcome = `Rolled_back rb; _ } ->
      emit t (Reenable_failed rb.Dynacut.rb_stage);
      false
  | { Dynacut.r_outcome = `Applied | `Degraded; _ } ->
      t.journals <- [];
      emit t Reenabled;
      rebaseline t (live_pids t t.cut_pids);
      true

let trip t ~traps =
  let next = t.trips + 1 in
  if attempt_reenable t then begin
    t.trips <- next;
    emit t (Breaker_tripped { traps; trip = next });
    if next >= t.cfg.max_trips then begin
      set_breaker t @@ Abandoned;
      emit t Abandoned_cut
    end
    else set_breaker t @@ Open (Int64.add (clock t) t.cfg.cooldown)
  end
(* on failure: stay put, the next tick re-detects the storm and retries *)

let probe_recut t =
  emit t Half_open_probe;
  let pids = live_pids t t.cut_pids in
  match
    Dynacut.try_cut t.session ~pids ~blocks:t.blocks ~policy:t.policy ()
  with
  | exception Fault.Injected _ ->
      emit t (Probe_failed "fault during probe re-cut");
      set_breaker t @@ Open (Int64.add (clock t) t.cfg.cooldown)
  | { Dynacut.r_outcome = `Rolled_back rb; _ } ->
      emit t (Probe_failed rb.Dynacut.rb_stage);
      set_breaker t @@ Open (Int64.add (clock t) t.cfg.cooldown)
  | { Dynacut.r_outcome = `Applied | `Degraded; r_journals; _ } ->
      t.journals <- r_journals;
      emit t (Probe_recut pids);
      rebaseline t pids;
      set_breaker t @@ Half_open (clock t)

let tick t =
  let window_traps = sample t in
  handle_deaths t;
  match t.breaker with
  | Abandoned -> ()
  | Closed ->
      if cut_live t && breached t ~limit:t.cfg.max_traps window_traps then
        trip t ~traps:window_traps
  | Open until -> if clock t >= until then probe_recut t
  | Half_open since ->
      if breached t ~limit:t.cfg.half_open_max_traps window_traps then
        trip t ~traps:window_traps
      else if Int64.sub (clock t) since >= t.cfg.window then begin
        set_breaker t @@ Closed;
        emit t Breaker_closed
      end

(* ------------------------------------------------------------------ *)
(* Canary rollout                                                      *)

(** The youngest non-root worker — in an ngx-style master/worker tree,
    a worker; in a single-process tree, the root itself. *)
let pick_canary t =
  let pids = Dynacut.tree_pids t.session in
  match List.rev (List.filter (fun p -> p <> t.session.Dynacut.root_pid) pids) with
  | pid :: _ -> pid
  | [] -> t.session.Dynacut.root_pid

(** Revert a canary whose cut must not survive: re-enable it if alive,
    or rebuild it from its pristine image if the storm killed it. Runs
    under {!Fault.suppressed} — this is an unwind path. *)
let revert_canary t pid cj =
  Fault.suppressed (fun () ->
      let m = t.session.Dynacut.machine in
      (match Machine.proc m pid with
      | Some p when Proc.is_live p ->
          (match Dynacut.try_reenable t.session ~pids:[ pid ] cj with
          | { Dynacut.r_outcome = `Applied | `Degraded; _ } -> ()
          | exception (Fault.Controller_killed _ as e) -> raise e
          | exception (Journal.Fenced _ as e) -> raise e
          | { Dynacut.r_outcome = `Rolled_back _; _ } | (exception _) ->
              (* last resort: recreate from the pre-cut image *)
              ignore
                (Dynacut.journaled_respawn t.session ~pid
                   ~path:(Dynacut.pristine_path t.session pid));
              Dynacut.forget_pid t.session ~pid)
      | _ ->
          ignore
            (Dynacut.journaled_respawn t.session ~pid
               ~path:(Dynacut.pristine_path t.session pid));
          Dynacut.forget_pid t.session ~pid);
      (* drop any queued death for the canary: just handled *)
      t.deaths <- List.filter (fun d -> d <> pid) t.deaths);
  t.journals <- [];
  t.cut_pids <- []

let full_cut t ~pids =
  match Dynacut.try_cut t.session ~pids ~blocks:t.blocks ~policy:t.policy () with
  | { Dynacut.r_outcome = `Rolled_back rb; _ } -> Error rb.Dynacut.rb_stage
  | { Dynacut.r_outcome = `Applied | `Degraded; r_journals; _ } -> Ok r_journals

let guarded_cut t ?(canary = true) ~drive () =
  if not canary then begin
    let pids = Dynacut.tree_pids t.session in
    match full_cut t ~pids with
    | Error stage -> R_rolled_back stage
    | Ok j ->
        t.journals <- j;
        t.cut_pids <- pids;
        set_breaker t @@ Closed;
        emit t (Cut_applied pids);
        rebaseline t pids;
        R_promoted
  end
  else begin
    let cpid = pick_canary t in
    match full_cut t ~pids:[ cpid ] with
    | Error stage -> R_rolled_back stage
    | Ok cj ->
        t.journals <- cj;
        t.cut_pids <- [ cpid ];
        emit t (Canary_cut cpid);
        rebaseline t [ cpid ];
        let traps = ref 0 in
        let healthy = ref true in
        let w = ref 0 in
        while !healthy && !w < t.cfg.canary_windows do
          incr w;
          drive ();
          let canary_died =
            List.mem cpid t.deaths
            ||
            match Machine.proc t.session.Dynacut.machine cpid with
            | Some p -> not (Proc.is_live p)
            | None -> true
          in
          traps := !traps + trap_delta t cpid + (if canary_died then 1 else 0);
          if canary_died || breached t ~limit:t.cfg.max_traps !traps then
            healthy := false
        done;
        if not !healthy then begin
          revert_canary t cpid cj;
          emit t (Canary_rejected { pid = cpid; traps = !traps });
          R_canary_rejected
        end
        else begin
          let rest =
            List.filter (fun p -> p <> cpid) (Dynacut.tree_pids t.session)
          in
          match
            Fault.site "supervisor.promote";
            if rest = [] then Ok [] else full_cut t ~pids:rest
          with
          | exception Fault.Injected _ ->
              revert_canary t cpid cj;
              emit t (Promotion_failed "fault at supervisor.promote");
              R_promotion_failed
          | Error stage ->
              revert_canary t cpid cj;
              emit t (Promotion_failed stage);
              R_promotion_failed
          | Ok rj ->
              t.journals <- cj @ rj;
              t.cut_pids <- cpid :: rest;
              set_breaker t @@ Closed;
              emit t (Canary_promoted (cpid :: rest));
              rebaseline t t.cut_pids;
              R_promoted
        end
  end

(* ------------------------------------------------------------------ *)
(* Verifier feedback                                                   *)

let verifier_feedback t =
  if not (cut_live t) then 0
  else begin
    let fps =
      List.sort_uniq Int64.compare
        (List.concat_map
           (fun pid -> Dynacut.verifier_log t.session ~pid)
           (live_pids t t.cut_pids))
    in
    if fps = [] then 0
    else begin
      let m = t.session.Dynacut.machine in
      let pid = List.hd (live_pids t t.cut_pids) in
      let img =
        Restore.load_from_tmpfs m ~path:(Dynacut.image_path t.session pid)
      in
      let keep, drop =
        List.partition
          (fun b -> not (List.mem (Rewriter.block_vaddr img b) fps))
          t.blocks
      in
      if drop = [] then 0
      else begin
        let pids = live_pids t t.cut_pids in
        match Dynacut.try_reenable t.session ~pids t.journals with
        | { Dynacut.r_outcome = `Rolled_back _; _ } -> 0
        | { Dynacut.r_outcome = `Applied | `Degraded; _ } -> (
            t.journals <- [];
            t.blocks <- keep;
            emit t
              (Verifier_shrunk
                 { dropped = List.length drop; kept = List.length keep });
            if keep = [] then List.length drop
            else
              match
                Dynacut.try_cut t.session ~pids ~blocks:keep ~policy:t.policy ()
              with
              | { Dynacut.r_outcome = `Applied | `Degraded; r_journals; _ } ->
                  t.journals <- r_journals;
                  rebaseline t pids;
                  List.length drop
              | { Dynacut.r_outcome = `Rolled_back _; _ } -> List.length drop)
      end
    end
  end

(* ------------------------------------------------------------------ *)

let block_of_sym (exe : Self.t) ~module_ ~sym =
  match Self.find_symbol exe sym with
  | None -> raise (Dynacut.Dynacut_error ("no such symbol: " ^ sym))
  | Some s ->
      let size =
        match Cfg.block_at (Cfg.of_self exe) s.Self.sym_off with
        | Some b -> b.Cfg.bb_size
        | None -> max 1 s.Self.sym_size
      in
      { Covgraph.b_module = module_; b_off = s.Self.sym_off; b_size = size }
