(** Shared MiniC HTTP plumbing, statically linked into each web server
    (each binary gets its own copy, as real servers do).

    Method ids follow the dispatcher convention both servers use in their
    big switch-case request handler (paper §3.1: "most server programs
    handle different requests (features) using a big switch-case
    statement"). *)

open Dsl

let m_get = 1
let m_head = 2
let m_post = 3
let m_put = 4
let m_delete = 5
let m_options = 6
let m_propfind = 7
let m_mkcol = 8

let method_name = function
  | 1 -> "GET"
  | 2 -> "HEAD"
  | 3 -> "POST"
  | 4 -> "PUT"
  | 5 -> "DELETE"
  | 6 -> "OPTIONS"
  | 7 -> "PROPFIND"
  | 8 -> "MKCOL"
  | _ -> "?"

(** Globals every HTTP app needs. *)
let globals =
  [
    global_zero "http_rbuf" 1024;
    global_zero "http_path" 256;
    global_zero "http_file" 256;
    global_zero "http_obuf" 2048;
    global_zero "http_num" 32;
  ]

(** MiniC helper functions (prefix [http_]). *)
let funcs =
  [
    (* parse the method word of the request in http_rbuf; returns id or 0 *)
    func "http_parse_method" []
      [
        when_ (call "strncmp" [ addr "http_rbuf"; s "GET "; i 4 ] ==: i 0) [ ret (i m_get) ];
        when_ (call "strncmp" [ addr "http_rbuf"; s "HEAD "; i 5 ] ==: i 0) [ ret (i m_head) ];
        when_ (call "strncmp" [ addr "http_rbuf"; s "POST "; i 5 ] ==: i 0) [ ret (i m_post) ];
        when_ (call "strncmp" [ addr "http_rbuf"; s "PUT "; i 4 ] ==: i 0) [ ret (i m_put) ];
        when_
          (call "strncmp" [ addr "http_rbuf"; s "DELETE "; i 7 ] ==: i 0)
          [ ret (i m_delete) ];
        when_
          (call "strncmp" [ addr "http_rbuf"; s "OPTIONS "; i 8 ] ==: i 0)
          [ ret (i m_options) ];
        when_
          (call "strncmp" [ addr "http_rbuf"; s "PROPFIND "; i 9 ] ==: i 0)
          [ ret (i m_propfind) ];
        when_ (call "strncmp" [ addr "http_rbuf"; s "MKCOL "; i 6 ] ==: i 0) [ ret (i m_mkcol) ];
        ret (i 0);
      ];
    (* copy the request path (second token) into http_path *)
    func "http_parse_path" []
      [
        decl "p" (addr "http_rbuf");
        (* skip method word *)
        while_ ((load8 (v "p") <>: i 32) &&: (load8 (v "p") <>: i 0))
          [ set "p" (v "p" +: i 1) ];
        when_ (load8 (v "p") ==: i 32) [ set "p" (v "p" +: i 1) ];
        decl "k" (i 0);
        decl "ch" (load8 (v "p"));
        while_
          ((v "ch" <>: i 32) &&: (v "ch" <>: i 13) &&: (v "ch" <>: i 10)
          &&: (v "ch" <>: i 0) &&: (v "k" <: i 255))
          [
            store8 (addr "http_path" +: v "k") (v "ch");
            set "k" (v "k" +: i 1);
            set "p" (v "p" +: i 1);
            set "ch" (load8 (v "p"));
          ];
        store8 (addr "http_path" +: v "k") (i 0);
        ret (v "k");
      ];
    (* locate the request body (after the blank line); returns pointer or 0 *)
    func "http_body" []
      [
        decl "p" (addr "http_rbuf");
        while_ (load8 (v "p") <>: i 0)
          [
            when_
              ((load8 (v "p") ==: i 10) &&: (load8 (v "p" +: i 1) ==: i 10))
              [ ret (v "p" +: i 2) ];
            when_
              ((load8 (v "p") ==: i 13)
              &&: (load8 (v "p" +: i 1) ==: i 10)
              &&: (load8 (v "p" +: i 2) ==: i 13)
              &&: (load8 (v "p" +: i 3) ==: i 10))
              [ ret (v "p" +: i 4) ];
            set "p" (v "p" +: i 1);
          ];
        ret (i 0);
      ];
    (* send a canned status line + header + body *)
    func "http_reply" [ "c"; "status_line"; "body" ]
      [
        do_ "strcpy" [ addr "http_obuf"; v "status_line" ];
        decl "n" (call "strlen" [ addr "http_obuf" ]);
        do_ "strcpy" [ addr "http_obuf" +: v "n"; s "Server: vxhttp\r\n\r\n" ];
        set "n" (call "strlen" [ addr "http_obuf" ]);
        when_ (v "body" <>: i 0)
          [
            do_ "strcpy" [ addr "http_obuf" +: v "n"; v "body" ];
            set "n" (call "strlen" [ addr "http_obuf" ]);
          ];
        ret (call "send" [ v "c"; addr "http_obuf"; v "n" ]);
      ];
  ]

(* Canned status lines *)
let st_200 = "HTTP/1.0 200 OK\r\n"
let st_201 = "HTTP/1.0 201 Created\r\n"
let st_204 = "HTTP/1.0 204 No Content\r\n"
let st_207 = "HTTP/1.0 207 Multi-Status\r\n"
let st_403 = "HTTP/1.0 403 Forbidden\r\n"
let st_404 = "HTTP/1.0 404 Not Found\r\n"
let st_405 = "HTTP/1.0 405 Method Not Allowed\r\n"
let st_503 = "HTTP/1.0 503 Service Unavailable\r\n"
