(** Host-side workload drivers: boot an application on a fresh machine,
    watch its console for the ready banner (the paper's §3.1 "the end of
    a program's initialization phase can be easily observed by reading
    the printed log"), drive requests, and collect traces.

    Everything here is deterministic: a fixed seed, a virtual clock, and
    closed-loop clients. *)

type app = {
  a_name : string;  (** binary name in the machine fs *)
  a_port : int option;  (** None for batch (SPEC-like) apps *)
  a_banner : string;  (** init-done log line *)
  a_install : Machine.t -> libc:Self.t -> unit;
}

let libc = lazy (Libc.build ())

let ltpd =
  {
    a_name = "ltpd";
    a_port = Some Ltpd.port;
    a_banner = Ltpd.ready_banner;
    a_install = (fun m ~libc -> Ltpd.install m ~libc);
  }

let ngx =
  {
    a_name = "ngx";
    a_port = Some Ngx.port;
    a_banner = Ngx.ready_banner;
    a_install = (fun m ~libc -> Ngx.install m ~libc);
  }

let rkv =
  {
    a_name = "rkv";
    a_port = Some Rkv.port;
    a_banner = Rkv.ready_banner;
    a_install = (fun m ~libc -> Rkv.install m ~libc);
  }

let spec_app (k : Spec.kernel) =
  {
    a_name = k.Spec.k_name;
    a_port = None;
    a_banner = Spec.init_done_banner k.Spec.k_name;
    a_install = (fun m ~libc -> Spec.install m ~libc k);
  }

let spec_apps = List.map spec_app Spec.all

(** The servers of the paper's §4 + the SPEC suite. *)
let all_apps = [ ltpd; ngx; rkv ] @ spec_apps

type ctx = {
  app : app;
  m : Machine.t;
  pid : int;  (** root pid (the master for ngx) *)
  col : Collector.t option;
}

exception Workload_error of string

(** Console text of the whole process tree (workers inherit the root's
    banner duties in some apps). *)
let console (c : ctx) : string =
  Machine.all_procs c.m
  |> List.map (fun (p : Proc.t) -> Proc.peek_stdout p)
  |> String.concat ""

let banner_seen (c : ctx) =
  let b = c.app.a_banner and s = console c in
  let nb = String.length b and ns = String.length s in
  let rec go i = i + nb <= ns && (String.sub s i nb = b || go (i + 1)) in
  go 0

(** Spawn [app] on a fresh machine. [traced] attaches the coverage
    collector *before* the first instruction so initialization code is
    covered. *)
let spawn ?(seed = 42) ?(traced = false) (app : app) : ctx =
  let m = Machine.create ~seed () in
  let libc = Lazy.force libc in
  Vfs.add_self m.Machine.fs "libc.so" libc;
  app.a_install m ~libc;
  let p = Machine.spawn m ~exe_path:app.a_name () in
  let col = if traced then Some (Collector.attach m ~pid:p.Proc.pid) else None in
  { app; m; pid = p.Proc.pid; col }

let contains ~(sub : string) (s : string) =
  let nb = String.length sub and ns = String.length s in
  let rec go i = i + nb <= ns && (String.sub s i nb = sub || go (i + 1)) in
  go 0

(** Spawn [n] independent workers of [app] side by side on {e one}
    machine — the fleet topology. Every worker is its own process tree
    listening on the app's port; the kernel round-robins connections
    over them ({!Net} fan-out). Returns one ctx per worker, all sharing
    the machine (and, when [traced], one merged collector). *)
let spawn_fleet ?(seed = 42) ?(traced = false) ~n (app : app) : ctx list =
  if n < 1 then invalid_arg "Workload.spawn_fleet: n must be >= 1";
  let m = Machine.create ~seed () in
  let libc = Lazy.force libc in
  Vfs.add_self m.Machine.fs "libc.so" libc;
  app.a_install m ~libc;
  let procs = List.init n (fun _ -> Machine.spawn m ~exe_path:app.a_name ()) in
  let col =
    match (traced, procs) with
    | false, _ | _, [] -> None
    | true, p0 :: rest ->
        let col = Collector.attach m ~pid:p0.Proc.pid in
        List.iter (fun (p : Proc.t) -> Collector.add_root col ~pid:p.Proc.pid) rest;
        Some col
  in
  List.map (fun (p : Proc.t) -> { app; m; pid = p.Proc.pid; col }) procs

(** Run until {e every} worker printed its banner on its own console —
    the merged-console check of {!wait_ready} would falsely pass once
    the first worker boots. *)
let wait_fleet_ready ?(max_cycles = 60_000_000) (fleet : ctx list) : unit =
  let m = match fleet with c :: _ -> c.m | [] -> invalid_arg "empty fleet" in
  let ready (c : ctx) =
    contains ~sub:c.app.a_banner (Proc.peek_stdout (Machine.proc_exn m c.pid))
  in
  match
    Machine.run_until m ~max_cycles ~pred:(fun () -> List.for_all ready fleet)
  with
  | `Pred -> ignore (Machine.run m ~max_cycles:200_000)
  | `Idle | `Dead | `Budget ->
      let stragglers =
        List.filter_map
          (fun c -> if ready c then None else Some (string_of_int c.pid))
          fleet
      in
      raise
        (Workload_error
           (Printf.sprintf "fleet workers [%s] never printed their banner"
              (String.concat ";" stragglers)))

(** Run until the init banner appears (and, for servers, until the tree
    quiesces into accept). *)
let wait_ready ?(max_cycles = 30_000_000) (c : ctx) : unit =
  match
    Machine.run_until c.m ~max_cycles ~pred:(fun () -> banner_seen c)
  with
  | `Pred ->
      (* let servers settle into their accept loop *)
      if c.app.a_port <> None then ignore (Machine.run c.m ~max_cycles:200_000)
  | `Idle | `Dead | `Budget ->
      if not (banner_seen c) then
        raise
          (Workload_error
             (Printf.sprintf "%s never printed its banner; console: %s" c.app.a_name
                (console c)))

(** One closed-loop request: connect, send, run until a reply arrives (or
    the server dies), return the reply. *)
let rpc ?(max_cycles = 5_000_000) (c : ctx) (text : string) : string =
  let port =
    match c.app.a_port with
    | Some p -> p
    | None -> raise (Workload_error (c.app.a_name ^ " is not a server"))
  in
  let conn = Net.connect c.m.Machine.net port in
  Net.client_send conn text;
  let dead () =
    match Machine.proc c.m c.pid with
    | Some p -> not (Proc.is_live p)
    | None -> true
  in
  let (_ : _) =
    Machine.run_until c.m ~max_cycles ~pred:(fun () ->
        Net.client_pending conn > 0 || dead ())
  in
  Net.client_recv conn

(** Like {!rpc} but impatient: once the virtual clock reaches [deadline]
    cycles past the send, the client abandons the connection
    ({!Net.client_close}) and raises {!Net.Timed_out}. The server keeps
    the stale request in its backlog and may still burn cycles serving
    it — that wasted work is the overload-collapse mechanism the
    [bench overload] curves measure. *)
let rpc_deadline ?(max_cycles = 5_000_000) (c : ctx) ~deadline (text : string) :
    string =
  let port =
    match c.app.a_port with
    | Some p -> p
    | None -> raise (Workload_error (c.app.a_name ^ " is not a server"))
  in
  let conn = Net.connect c.m.Machine.net port in
  let due = Int64.add c.m.Machine.clock deadline in
  Net.set_deadline conn due;
  Net.client_send conn text;
  let dead () =
    match Machine.proc c.m c.pid with
    | Some p -> not (Proc.is_live p)
    | None -> true
  in
  let settled () =
    Net.client_pending conn > 0
    || dead ()
    || Net.expired conn ~now:c.m.Machine.clock
  in
  (match Machine.run_until c.m ~max_cycles ~pred:settled with
  | `Pred | `Budget -> ()
  | `Idle | `Dead ->
      (* nothing left to run: the reply will never come, so the clock
         jumps straight to the deadline *)
      if Net.client_pending conn = 0 then
        c.m.Machine.clock <- Int64.max c.m.Machine.clock due);
  if Net.client_pending conn = 0 && Net.expired conn ~now:c.m.Machine.clock
  then begin
    Net.client_close conn;
    raise (Net.Timed_out port)
  end;
  Net.client_recv conn

(** {!rpc_deadline} under a client-side retry policy: up to [attempts]
    tries, capped-jittered exponential backoff between them (the wait
    advances the virtual clock, off the wire), and a [budget] ref shared
    across calls so one run's total retries stay bounded no matter how
    many callers spin. An empty reply (server died mid-request) counts
    as a failure too. Raises {!Net.Timed_out} when attempts or budget
    run out. *)
let rpc_retry ?(max_cycles = 5_000_000) ?(attempts = 3)
    ?(backoff_base = 50_000L) ?(backoff_cap = 400_000L) (c : ctx) ~rng ~budget
    ~deadline (text : string) : string =
  let port = match c.app.a_port with Some p -> p | None -> 0 in
  let backoff attempt =
    let d = ref backoff_base in
    for _ = 2 to attempt do
      if Int64.compare !d backoff_cap < 0 then d := Int64.mul !d 2L
    done;
    let d = if Int64.compare !d backoff_cap > 0 then backoff_cap else !d in
    (* jitter in [d/2, d) keeps synchronized clients from re-colliding *)
    let half = Int64.to_float (Int64.div d 2L) in
    Int64.of_float (half +. (half *. Rng.float rng))
  in
  let rec go attempt =
    let outcome =
      match rpc_deadline ~max_cycles c ~deadline text with
      | "" -> Error port
      | reply -> Ok reply
      | exception Net.Timed_out p -> Error p
    in
    match outcome with
    | Ok reply -> reply
    | Error p ->
        if attempt >= attempts || !budget <= 0 then raise (Net.Timed_out p);
        decr budget;
        c.m.Machine.clock <- Int64.add c.m.Machine.clock (backoff attempt);
        go (attempt + 1)
  in
  go 1

(** Run a batch app to completion; returns its exit state. *)
let run_to_exit ?(max_cycles = 80_000_000) (c : ctx) : Proc.state =
  let (_ : _) =
    Machine.run_until c.m ~max_cycles ~pred:(fun () ->
        match Machine.proc c.m c.pid with
        | Some p -> not (Proc.is_live p)
        | None -> true)
  in
  (Machine.proc_exn c.m c.pid).Proc.state

let collector (c : ctx) =
  match c.col with
  | Some col -> col
  | None -> raise (Workload_error "context was not spawned with ~traced:true")

(* ---------- standard request mixes ---------- *)

let http_get path = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path
let http_head path = Printf.sprintf "HEAD %s HTTP/1.0\r\n\r\n" path
let http_post path body = Printf.sprintf "POST %s HTTP/1.0\r\n\r\n%s" path body
let http_put path body = Printf.sprintf "PUT %s HTTP/1.0\r\n\r\n%s" path body
let http_delete path = Printf.sprintf "DELETE %s HTTP/1.0\r\n\r\n" path

(** Wanted traffic for the web servers: read-only methods *plus* requests
    that exercise the default error path, so the dispatcher chain and the
    403 responder stay in the wanted coverage (§3.1 requires sample
    inputs for every wanted behaviour). *)
let web_wanted =
  [
    http_get "/index.html";
    http_get "/about.txt";
    http_get "/style.css";
    http_get "/missing.html";
    http_head "/index.html";
    http_post "/form" "a=1&b=2";
    "OPTIONS / HTTP/1.0\r\n\r\n";
    "PROPFIND / HTTP/1.0\r\n\r\n";
    "BREW /pot HTTP/1.0\r\n\r\n" (* unknown method: error path *);
  ]

(** Undesired traffic: the WebDAV write methods (the paper disables PUT
    and DELETE in Nginx and Lighttpd, §4.1). *)
let web_undesired =
  [
    http_put "/upload.txt" "hello upload";
    http_get "/upload.txt";
    (* reads of *other* resources while an upload exists: covers the
       scan-past-occupied-slot path that a PUT-then-GET workload would
       otherwise leave untraced (the §3.2.3 over-elimination pitfall) *)
    http_get "/index.html";
    http_head "/about.txt";
    http_delete "/upload.txt";
    http_delete "/upload.txt" (* delete of an already-deleted resource *);
  ]

(** Wanted traffic for rkv: the read-mostly command set plus an unknown
    command for the error path. *)
let kv_wanted =
  [
    "PING\n";
    "GET greeting\n";
    "GET missing\n";
    "EXISTS color\n";
    "INCR counter\n";
    "APPEND color ish\n";
    "ECHO hi\n";
    "KEYS\n";
    "INFO\n";
    "DEL color\n";
    "BOGUS x\n" (* unknown command: error path *);
  ]

(** Undesired traffic for the Figure 8 experiment: the SET command. *)
let kv_undesired = [ "SET newkey newval\n"; "GET newkey\n"; "SET newkey other\n" ]

(** Undesired traffic for Table 1: the vulnerable commands, driven with
    benign arguments during profiling. *)
let kv_vulnerable =
  [
    "SETRANGE greeting 2 xy\n";
    "STRALGO abc abd\n";
    "CONFIG SET small\n";
    "CONFIG GET x\n";
  ]

(** Trace one boot + request mix; returns (init log, serving log) using
    the nudge protocol when [nudge_at_ready], else a single merged log. *)
let trace_requests ?(seed = 42) ~(app : app) ~(requests : string list)
    ~(nudge_at_ready : bool) () : Drcov.log option * Drcov.log =
  let c = spawn ~seed ~traced:true app in
  wait_ready c;
  let init_log = if nudge_at_ready then Some (Collector.nudge (collector c)) else None in
  List.iter (fun r -> ignore (rpc c r)) requests;
  (* keep profiling for a while after the request mix: periodic code (the
     ngx master's wakeup loop) must land in the serving coverage, or the
     init-diff would misclassify it — the "may also execute later"
     pitfall the paper discusses in §3.1 *)
  ignore (Machine.run c.m ~max_cycles:5_000_000);
  (init_log, Collector.detach (collector c))

(** Trace a SPEC kernel: nudge at the init banner, then run to exit. *)
let trace_spec ?(seed = 42) (k : Spec.kernel) : Drcov.log * Drcov.log =
  let c = spawn ~seed ~traced:true (spec_app k) in
  wait_ready c;
  let init_log = Collector.nudge (collector c) in
  let (_ : Proc.state) = run_to_exit c in
  (init_log, Collector.detach (collector c))

(** Fully automatic phase profiling (paper §5, implemented in
    {!Autophase}): no operator watches the console — the init nudge
    fires on the server's first [accept] syscall. *)
let trace_requests_auto ?(seed = 42) ~(app : app) ~(requests : string list) () :
    Drcov.log * Drcov.log =
  let c = spawn ~seed ~traced:true app in
  let auto =
    Autophase.arm c.m (collector c) ~trigger:Autophase.On_accept
  in
  wait_ready c;
  List.iter (fun r -> ignore (rpc c r)) requests;
  ignore (Machine.run c.m ~max_cycles:5_000_000);
  Autophase.disarm auto;
  match Autophase.init_log auto with
  | Some init -> (init, Collector.detach (collector c))
  | None -> raise (Workload_error "autophase never fired")
