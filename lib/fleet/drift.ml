(** The coverage-drift monitor — the paper's bidirectional customization
    closed-loop (DESIGN.md §6a).

    The monitor watches two complementary signals over fixed virtual-
    clock windows of live traffic:

    - {b re-enable (trap rate)}: cut blocks can never appear in coverage
      — traffic that legitimately wants them lands in the injected
      SIGTRAP handler instead. When the fleet-wide handler-hit delta in
      one window reaches [d_trap_threshold], the workload has drifted
      onto the blocked feature: the monitor re-enables the cut on every
      worker in one fleet-wide action (fault site [fleet.reenable]).
    - {b re-cut (cold coverage)}: while the feature is enabled its
      blocks {e do} show up in the collector's windowed coverage. When
      the {!Tracediff} of the sliding window against the candidate set
      shows every candidate block cold for [d_hysteresis] consecutive
      windows, the feature went unused again: the monitor re-cuts the
      whole fleet (fault site [fleet.recut]).

    The hysteresis is deliberately asymmetric — re-enabling is urgent
    (traffic is being refused), re-cutting is not (an enabled feature
    only costs attack surface), so one hot window re-enables but only a
    sustained cold streak re-cuts. *)

type config = {
  d_period : int64;  (** sampling window, virtual cycles *)
  d_keep : int;  (** closed windows retained by the collector *)
  d_trap_threshold : int;  (** fleet handler hits per window to re-enable *)
  d_hysteresis : int;  (** consecutive all-cold windows before re-cut *)
}

let default_config =
  { d_period = 400_000L; d_keep = 3; d_trap_threshold = 3; d_hysteresis = 2 }

type action =
  | Reenabled of int  (** workers whose cut was re-enabled *)
  | Recut of int  (** workers re-cut *)

let pp_action ppf = function
  | Reenabled n -> Format.fprintf ppf "reenabled(workers=%d)" n
  | Recut n -> Format.fprintf ppf "recut(workers=%d)" n

type t = {
  cfg : config;
  col : Collector.t;
  workers : Rollout.worker list;
  candidate : Covgraph.block list;  (** the managed feature block set *)
  policy : Dynacut.policy;
  mutable baseline : (int * int64) list;  (** pid -> handler-hit baseline *)
  mutable cold_streak : int;
  mutable reenables : int;
  mutable recuts : int;
}

let reenables t = t.reenables
let recuts t = t.recuts

let hits (w : Rollout.worker) =
  Dynacut.handler_hits w.Rollout.w_session ~pid:w.Rollout.w_pid

let rebaseline t =
  t.baseline <- List.map (fun w -> (w.Rollout.w_pid, hits w)) t.workers

(** Attach the monitor and start the collector's windowed sampling. The
    collector must already trace every worker ({!Collector.add_root}). *)
let create ~(collector : Collector.t) ~(workers : Rollout.worker list)
    ~(candidate : Covgraph.block list) ~(policy : Dynacut.policy)
    (cfg : config) : t =
  Collector.start_window collector ~period:cfg.d_period ~keep:cfg.d_keep;
  let t =
    {
      cfg;
      col = collector;
      workers;
      candidate;
      policy;
      baseline = [];
      cold_streak = 0;
      reenables = 0;
      recuts = 0;
    }
  in
  rebaseline t;
  t

(** Fleet-wide handler-hit delta since the last window (reset-tolerant,
    like the supervisor's trap sampling). *)
let trap_delta t : int =
  List.fold_left
    (fun acc w ->
      let raw = hits w in
      let last =
        try List.assoc w.Rollout.w_pid t.baseline with Not_found -> 0L
      in
      let d = if raw >= last then Int64.sub raw last else raw in
      acc + Int64.to_int d)
    0 t.workers

(** The candidate blocks absent from [window] — the Tracediff of the
    live sliding window against the cut's block set. *)
let cold_blocks t (window : Drcov.log) : Covgraph.block list =
  (* express the candidate set as a synthetic one-module-per-name log so
     feature_blocks can diff it against the real window coverage *)
  let names =
    List.sort_uniq compare
      (List.map (fun (b : Covgraph.block) -> b.Covgraph.b_module) t.candidate)
  in
  let modules =
    List.mapi
      (fun i name ->
        { Drcov.mi_id = i; mi_name = name; mi_base = 0L; mi_end = 0L })
      names
  in
  let mid name =
    let rec go i = function
      | n :: _ when n = name -> i
      | _ :: rest -> go (i + 1) rest
      | [] -> 0
    in
    go 0 names
  in
  let bbs =
    List.mapi
      (fun seq (b : Covgraph.block) ->
        {
          Drcov.bb_mod = mid b.Covgraph.b_module;
          bb_off = b.Covgraph.b_off;
          bb_size = b.Covgraph.b_size;
          bb_seq = seq;
        })
      t.candidate
  in
  let report =
    Tracediff.feature_blocks
      ~keep_module:(fun _ -> true)
      ~wanted:[ window ]
      ~undesired:[ { Drcov.modules; bbs } ]
      ()
  in
  report.Tracediff.undesired

let set_score (score : float) =
  Obs.set_gauge (Obs.gauge "fleet.drift_score") score

(** Re-enable every worker carrying the cut, as one fleet-wide action. *)
let reenable_fleet t ~(traps : int) : action =
  Fault.site "fleet.reenable";
  let cut = List.filter Rollout.cut_live t.workers in
  List.iter
    (fun (w : Rollout.worker) ->
      Rollout.revert_worker w;
      Rollout.transition w "reenabled")
    cut;
  t.reenables <- t.reenables + 1;
  Obs.incr (Obs.counter "fleet.reenables");
  Obs.event ~kind:"fleet"
    (Printf.sprintf "drift reenable traps=%d workers=%d" traps
       (List.length cut));
  t.cold_streak <- 0;
  rebaseline t;
  Reenabled (List.length cut)

(** Re-cut the whole fleet; any member rollback reverts the ones already
    re-cut so the fleet stays uniform either way. *)
let recut_fleet t : action option =
  Fault.site "fleet.recut";
  let done_ = ref [] in
  let failed = ref false in
  List.iter
    (fun (w : Rollout.worker) ->
      if not !failed then
        match
          Dynacut.try_cut w.Rollout.w_session ~blocks:t.candidate
            ~policy:t.policy ()
        with
        | { Dynacut.r_outcome = `Applied | `Degraded; r_journals; _ } ->
            w.Rollout.w_journals <- r_journals;
            Rollout.transition w "recut";
            done_ := w :: !done_
        | { Dynacut.r_outcome = `Rolled_back _; _ } -> failed := true)
    t.workers;
  if !failed then begin
    List.iter Rollout.revert_worker !done_;
    Obs.event ~kind:"fleet" "drift recut failed; fleet left enabled";
    t.cold_streak <- 0;
    None
  end
  else begin
    t.recuts <- t.recuts + 1;
    Obs.incr (Obs.counter "fleet.recuts");
    Obs.event ~kind:"fleet"
      (Printf.sprintf "drift recut workers=%d" (List.length t.workers));
    t.cold_streak <- 0;
    rebaseline t;
    Some (Recut (List.length t.workers))
  end

(** One monitor step; call after driving traffic. Acts only when the
    collector closes a sampling window. *)
let tick t : action option =
  match Collector.window_tick t.col with
  | None -> None
  | Some window ->
      let cut_workers = List.filter Rollout.cut_live t.workers in
      if cut_workers <> [] then begin
        let traps = trap_delta t in
        rebaseline t;
        set_score
          (min 1. (float_of_int traps /. float_of_int t.cfg.d_trap_threshold));
        if traps >= t.cfg.d_trap_threshold then Some (reenable_fleet t ~traps)
        else None
      end
      else begin
        let cold = cold_blocks t window in
        let n_cold = List.length cold
        and n_all = List.length t.candidate in
        set_score
          (if n_all = 0 then 0.
           else float_of_int n_cold /. float_of_int n_all);
        if n_all > 0 && n_cold = n_all then begin
          t.cold_streak <- t.cold_streak + 1;
          if t.cold_streak >= t.cfg.d_hysteresis then recut_fleet t else None
        end
        else begin
          t.cold_streak <- 0;
          None
        end
      end
