(** Deterministic open-loop load generator (DESIGN.md §6b).

    The closed-loop drivers ({!Balancer.request}, [Workload.rpc]) can
    never offer more load than the fleet can serve — each request waits
    for the previous reply. Overload only exists open-loop: arrivals
    follow a Poisson process on the virtual clock (inter-arrival times
    drawn from {!Rng}, so a fixed seed replays bit-for-bit) and are
    dispatched whether or not earlier requests have finished, so
    offered load can exceed capacity and the shed/timeout/retry
    machinery actually engages.

    Clients are impatient: every request carries a deadline, a timed-out
    or shed/refused request retries with capped-jittered exponential
    backoff — but only while the {e per-run retry budget} lasts, so
    retries stop amplifying load exactly when the fleet is saturated
    (tracked as [fleet.retries] / [fleet.budget_exhausted]).

    The machine cannot advance its own clock while every worker blocks
    on accept ([Machine.run] returns [`Idle]); between events the
    generator advances the clock manually, exactly like a host's
    timerfd would fire. *)

type config = {
  lg_seed : int;
  lg_offered : float;  (** mean arrival rate, requests per Mcycle *)
  lg_requests : int;  (** total arrivals to generate *)
  lg_deadline : int64;  (** per-request deadline, cycles *)
  lg_max_retries : int;  (** per-request retry cap *)
  lg_retry_budget : int;  (** per-run budget shared by all requests *)
  lg_backoff_base : int64;  (** first-retry backoff, cycles *)
  lg_backoff_cap : int64;  (** backoff ceiling, cycles *)
  lg_max_cycles : int;  (** overall budget (runaway guard) *)
}

let default_config =
  {
    lg_seed = 7;
    lg_offered = 50.;
    lg_requests = 100;
    lg_deadline = 400_000L;
    lg_max_retries = 3;
    lg_retry_budget = 50;
    lg_backoff_base = 50_000L;
    lg_backoff_cap = 400_000L;
    lg_max_cycles = 600_000_000;
  }

type stats = {
  s_offered : int;  (** first-attempt arrivals generated *)
  s_completed : int;  (** replies with a body, within deadline *)
  s_failed : int;  (** gave up: empty reply, retries/budget exhausted *)
  s_shed : int;  (** admission-control rejections observed *)
  s_refused : int;  (** no eligible worker at dispatch *)
  s_timeouts : int;  (** deadlines that passed in flight *)
  s_retries : int;  (** re-dispatches actually performed *)
  s_budget_exhausted : int;  (** retries wanted but denied by the budget *)
  s_cycles : int64;  (** virtual span of the whole run *)
  s_p50 : float;  (** completed-request latency percentiles, cycles *)
  s_p99 : float;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "offered=%d completed=%d failed=%d shed=%d refused=%d timeouts=%d \
     retries=%d budget_exhausted=%d cycles=%Ld p50=%.0f p99=%.0f"
    s.s_offered s.s_completed s.s_failed s.s_shed s.s_refused s.s_timeouts
    s.s_retries s.s_budget_exhausted s.s_cycles s.s_p50 s.s_p99

(* exponential inter-arrival for a Poisson process at [rate]/Mcycle *)
let interarrival rng ~rate =
  let u = Rng.float rng in
  let dt = -.log (1. -. u) /. (rate /. 1e6) in
  Int64.of_float (max 1. dt)

(* capped exponential backoff with full jitter on the upper half:
   d = min(cap, base * 2^(attempt-1)); wait in [d/2, d) *)
let backoff rng ~base ~cap ~attempt =
  let d = ref base in
  for _ = 2 to attempt do
    d := Int64.min cap (Int64.mul !d 2L)
  done;
  let d = Int64.to_float (Int64.min cap !d) in
  Int64.of_float (max 1. ((d /. 2.) +. (Rng.float rng *. d /. 2.)))

(** Drive the saturated fleet: generate [lg_requests] Poisson arrivals
    against [b], retrying within the budget, until every request either
    completed, timed out for good, or was dropped. *)
let run (b : Balancer.t) (cfg : config) ~(text : string) : stats =
  if cfg.lg_offered <= 0. then invalid_arg "Loadgen.run: lg_offered <= 0";
  let m = Balancer.(b.machine) in
  let rng = Rng.create cfg.lg_seed in
  let start = m.Machine.clock in
  let hard_deadline = Int64.add start (Int64.of_int cfg.lg_max_cycles) in
  let budget = ref cfg.lg_retry_budget in
  let completed = ref 0
  and failed = ref 0
  and shed = ref 0
  and refused = ref 0
  and timeouts = ref 0
  and retries = ref 0
  and budget_exhausted = ref 0 in
  let latencies = ref [] in
  (* arrivals still to generate, and the clock of the next one *)
  let remaining = ref cfg.lg_requests in
  let next_arrival = ref (Int64.add start (interarrival rng ~rate:cfg.lg_offered)) in
  (* requests waiting out a backoff: (due clock, attempt) *)
  let waiting = ref [] in
  (* dispatched tickets: (ticket, attempt) *)
  let inflight = ref [] in
  let give_up () =
    incr failed;
    Obs.incr (Obs.counter "fleet.budget_exhausted");
    incr budget_exhausted
  in
  (* a failed attempt either schedules a retry or burns the request *)
  let retry_or_fail ~attempt =
    if attempt > cfg.lg_max_retries then incr failed
    else if !budget <= 0 then give_up ()
    else begin
      decr budget;
      incr retries;
      Obs.incr (Obs.counter "fleet.retries");
      let due =
        Int64.add m.Machine.clock
          (backoff rng ~base:cfg.lg_backoff_base ~cap:cfg.lg_backoff_cap
             ~attempt)
      in
      waiting := (due, attempt) :: !waiting
    end
  in
  let launch ~attempt =
    let deadline = Int64.add m.Machine.clock cfg.lg_deadline in
    match Balancer.dispatch ~deadline b text with
    | `Ticket tk -> inflight := (tk, attempt) :: !inflight
    | `Shed ->
        incr shed;
        retry_or_fail ~attempt:(attempt + 1)
    | `Refused ->
        incr refused;
        retry_or_fail ~attempt:(attempt + 1)
  in
  let poll_inflight () =
    inflight :=
      List.filter
        (fun (tk, attempt) ->
          match Balancer.poll b tk with
          | `Pending -> true
          | `Reply (_, body) ->
              if String.length body > 0 then begin
                incr completed;
                latencies :=
                  Int64.to_float
                    (Int64.sub m.Machine.clock Balancer.(tk.tk_sent))
                  :: !latencies
              end
              else (* worker died under the request *)
                retry_or_fail ~attempt:(attempt + 1);
              false
          | `Timed_out _ ->
              incr timeouts;
              retry_or_fail ~attempt:(attempt + 1);
              false)
        !inflight
  in
  let next_event () =
    let cands =
      (if !remaining > 0 then [ !next_arrival ] else [])
      @ List.map fst !waiting
      @ List.filter_map
          (fun (tk, _) -> Net.deadline Balancer.(tk.tk_conn))
          !inflight
    in
    match cands with
    | [] -> None
    | c :: cs -> Some (List.fold_left Int64.min c cs)
  in
  let done_ () = !remaining = 0 && !waiting = [] && !inflight = [] in
  while (not (done_ ())) && m.Machine.clock < hard_deadline do
    (* fire everything due at the current clock *)
    if !remaining > 0 && m.Machine.clock >= !next_arrival then begin
      decr remaining;
      next_arrival :=
        Int64.add !next_arrival (interarrival rng ~rate:cfg.lg_offered);
      launch ~attempt:1
    end
    else begin
      let due, rest =
        List.partition (fun (d, _) -> m.Machine.clock >= d) !waiting
      in
      waiting := rest;
      match due with
      | (_, attempt) :: requeue ->
          waiting := requeue @ !waiting;
          launch ~attempt
      | [] -> (
          poll_inflight ();
          if not (done_ ()) then
            match next_event () with
            | None -> ()
            | Some target ->
                let target = Int64.min target hard_deadline in
                if target > m.Machine.clock then begin
                  let budget_cycles =
                    Int64.to_int (Int64.sub target m.Machine.clock)
                  in
                  let progressed () =
                    List.exists
                      (fun (tk, _) ->
                        Net.client_pending Balancer.(tk.tk_conn) > 0)
                      !inflight
                  in
                  match
                    Machine.run_until m ~max_cycles:budget_cycles
                      ~pred:progressed
                  with
                  | `Pred | `Budget -> ()
                  | `Idle | `Dead ->
                      (* nothing runnable: advance the clock to the next
                         arrival/backoff/deadline, like a host timer *)
                      m.Machine.clock <- Int64.max m.Machine.clock target
                end)
    end
  done;
  (* whatever is still in flight when the budget guard trips *)
  List.iter (fun (_, _) -> incr failed) !inflight;
  let s_offered = cfg.lg_requests - !remaining in
  let p p_ = Obs.percentile_list p_ !latencies in
  let st =
    {
      s_offered;
      s_completed = !completed;
      s_failed = !failed;
      s_shed = !shed;
      s_refused = !refused;
      s_timeouts = !timeouts;
      s_retries = !retries;
      s_budget_exhausted = !budget_exhausted;
      s_cycles = Int64.sub m.Machine.clock start;
      s_p50 = p 50.;
      s_p99 = p 99.;
    }
  in
  Obs.event ~kind:"loadgen" (Format.asprintf "%a" pp_stats st);
  st
