(** The health-scored fleet dispatcher (DESIGN.md §6b).

    PR 1-5's balancer was a control plane over the kernel's blind
    round-robin ({!Net.route}); this one owns the dispatch decision.
    Each request is routed to the {e least-loaded healthy} worker:
    dead, frozen, drained, breaker-open and backlog-full workers are
    skipped (so a worker being cut mid-wave receives zero new
    dispatches before it is even frozen), a half-open worker gets at
    most one trickle probe at a time, and fleet-level admission control
    sheds requests outright once aggregate in-flight crosses a
    watermark (with hysteresis, so shedding does not flap).

    Every decision is recorded twice: in the metric registry
    ([fleet.dispatches{pid}], [fleet.shed], [fleet.timeouts],
    [fleet.refused], the [fleet.request_cycles] latency histogram,
    [fleet.inflight] / [net.accept_queue_depth{owner,port}] gauges) and
    in a bounded in-memory decision log that tests and the acceptance
    criteria read back ("a frozen worker received zero dispatches").

    Split API: {!dispatch}/{!poll} are non-blocking (the open-loop
    generator in {!Loadgen} interleaves many in-flight requests), while
    {!request} keeps the closed-loop connect-run-reply contract the
    rollout driver and the CLI use. *)

type config = {
  b_ewma_alpha : float;  (** weight of the newest in-flight sample *)
  b_backlog_max : int;  (** per-listener accept-queue bound *)
  b_shed_high : int;
      (** start shedding once aggregate in-flight reaches this *)
  b_shed_low : int;  (** stop shedding at or below this (hysteresis) *)
  b_decision_cap : int;  (** decision-log bound *)
  b_lat_alpha : float;  (** weight of the newest response-latency sample *)
  b_straggler_factor : float;
      (** skip a worker whose latency EWMA exceeds this multiple of the
          fleet's best (gray failure: slow is as bad as down) *)
  b_straggler_min : int;
      (** latency samples required before the straggler test applies *)
  b_straggler_decay : float;
      (** per-decision decay of a skipped straggler's EWMA toward the
          baseline, so it rejoins once the slowness clears *)
}

let default_config ~(workers : int) =
  {
    b_ewma_alpha = 0.3;
    b_backlog_max = 8;
    b_shed_high = 4 * max 1 workers;
    b_shed_low = 2 * max 1 workers;
    b_decision_cap = 512;
    b_lat_alpha = 0.3;
    b_straggler_factor = 3.;
    b_straggler_min = 3;
    b_straggler_decay = 0.9;
  }

(** Why a worker was passed over for one dispatch. *)
type skip =
  | Dead
  | Frozen
  | Drained
  | Breaker_open
  | Backlog_full
  | Half_open_hold  (** half-open breaker: one probe already in flight *)
  | Straggler
      (** response-latency EWMA over [b_straggler_factor] × the fleet's
          best: a gray-failing worker sheds dispatches like a frozen one *)

let skip_to_string = function
  | Dead -> "dead"
  | Frozen -> "frozen"
  | Drained -> "drained"
  | Breaker_open -> "breaker-open"
  | Backlog_full -> "backlog-full"
  | Half_open_hold -> "half-open-hold"
  | Straggler -> "straggler"

type verdict =
  | Dispatched of int  (** chosen worker pid *)
  | Shed  (** admission control: aggregate in-flight over watermark *)
  | All_skipped  (** every worker skipped -> refused *)

type decision = {
  d_clock : int64;
  d_verdict : verdict;
  d_skipped : (int * skip) list;  (** per-pid skip reasons, pid order *)
}

let pp_decision ppf d =
  let verdict =
    match d.d_verdict with
    | Dispatched pid -> Printf.sprintf "dispatch pid=%d" pid
    | Shed -> "shed"
    | All_skipped -> "refused"
  in
  Format.fprintf ppf "@%Ld %s skipped=[%s]" d.d_clock verdict
    (String.concat ";"
       (List.map
          (fun (pid, r) -> Printf.sprintf "%d:%s" pid (skip_to_string r))
          d.d_skipped))

type health = {
  mutable h_ewma : float;  (** EWMA of in-flight, sampled per dispatch *)
  mutable h_inflight : int;  (** dispatched, not yet completed *)
  mutable h_dispatched : int;  (** cumulative, the tie-breaker *)
  mutable h_lat_ewma : float;
      (** EWMA of response latency in cycles, sampled at {!poll}
          resolution (replies and timeouts — a timeout is a censored
          sample at the full deadline, exactly what a straggler emits) *)
  mutable h_lat_samples : int;  (** latency samples folded in so far *)
}

type t = {
  machine : Machine.t;
  port : int;
  workers : int list;  (** worker tree-root pids, registration order *)
  cfg : config;
  health : (int, health) Hashtbl.t;
  mutable inflight : int;  (** aggregate dispatched-not-completed *)
  mutable shedding : bool;  (** admission-control state (hysteresis) *)
  mutable decisions : decision list;  (** newest first, bounded *)
  mutable n_decisions : int;
}

(** One dispatched request: poll it until a reply, a timeout, or the
    serving worker's death resolves it. *)
type ticket = {
  tk_conn : Net.conn;
  tk_pid : int;
  tk_sent : int64;
  mutable tk_open : bool;
}

exception Balancer_error of string

let create ?config (machine : Machine.t) ~(port : int) ~(workers : int list) :
    t =
  let cfg =
    match config with
    | Some c -> c
    | None -> default_config ~workers:(List.length workers)
  in
  let health = Hashtbl.create 8 in
  List.iter
    (fun pid ->
      Hashtbl.replace health pid
        {
          h_ewma = 0.;
          h_inflight = 0;
          h_dispatched = 0;
          h_lat_ewma = 0.;
          h_lat_samples = 0;
        })
    workers;
  {
    machine;
    port;
    workers;
    cfg;
    health;
    inflight = 0;
    shedding = false;
    decisions = [];
    n_decisions = 0;
  }

let workers t = t.workers
let port t = t.port
let config t = t.cfg

let listener t ~pid =
  match Net.find_listener_owned t.machine.Machine.net ~port:t.port ~owner:pid with
  | Some l -> l
  | None ->
      raise
        (Balancer_error
           (Printf.sprintf "worker %d has no listener on port %d" pid t.port))

(** Stop routing new connections to [pid]; in-flight ones are untouched. *)
let drain t ~pid = (listener t ~pid).Net.accepting <- false

let undrain t ~pid = (listener t ~pid).Net.accepting <- true

(** Pids currently taken out of the rotation. *)
let draining t =
  List.filter (fun pid -> not (listener t ~pid).Net.accepting) t.workers

let accepting t =
  List.filter (fun pid -> (listener t ~pid).Net.accepting) t.workers

let health t ~pid =
  match Hashtbl.find_opt t.health pid with
  | Some h -> h
  | None -> raise (Balancer_error (Printf.sprintf "pid %d is not a worker" pid))

let ewma_inflight t ~pid = (health t ~pid).h_ewma
let ewma_latency t ~pid = (health t ~pid).h_lat_ewma
let inflight t = t.inflight
let shedding t = t.shedding

(* fold one response-latency observation into [pid]'s EWMA *)
let note_latency t ~pid (cycles : float) =
  match Hashtbl.find_opt t.health pid with
  | None -> ()
  | Some h ->
      h.h_lat_samples <- h.h_lat_samples + 1;
      h.h_lat_ewma <-
        (if h.h_lat_samples = 1 then cycles
         else
           (t.cfg.b_lat_alpha *. cycles)
           +. ((1. -. t.cfg.b_lat_alpha) *. h.h_lat_ewma));
      Obs.set_gauge
        (Obs.gauge ~labels:[ ("pid", string_of_int pid) ] "fleet.latency_ewma")
        h.h_lat_ewma

(* the fastest credible worker's latency EWMA, excluding [pid] itself —
   the straggler test is relative, so a uniformly slow fleet (or a lone
   worker) has no stragglers *)
let lat_baseline t ~excluding =
  List.fold_left
    (fun acc pid ->
      if pid = excluding then acc
      else
        let h = health t ~pid in
        if h.h_lat_samples >= t.cfg.b_straggler_min then
          match acc with
          | None -> Some h.h_lat_ewma
          | Some b -> Some (min b h.h_lat_ewma)
        else acc)
    None t.workers

(** The decision log, oldest first (bounded at [b_decision_cap]). *)
let decisions t = List.rev t.decisions

let dispatches ~pid =
  Obs.counter_value
    (Obs.counter ~labels:[ ("pid", string_of_int pid) ] "fleet.dispatches")

let refused () = Obs.counter_value (Obs.counter "fleet.refused")
let shed_count () = Obs.counter_value (Obs.counter "fleet.shed")
let timeout_count () = Obs.counter_value (Obs.counter "fleet.timeouts")

let latency_hist () =
  Obs.histogram
    ~buckets:[ 1e3; 1e4; 5e4; 1e5; 5e5; 1e6; 5e6 ]
    "fleet.request_cycles"

let record t verdict skipped =
  let d =
    { d_clock = t.machine.Machine.clock; d_verdict = verdict; d_skipped = skipped }
  in
  t.decisions <- d :: t.decisions;
  t.n_decisions <- t.n_decisions + 1;
  if t.n_decisions > t.cfg.b_decision_cap then begin
    (* drop the oldest half rather than one-at-a-time list surgery *)
    let keep = t.cfg.b_decision_cap / 2 in
    let rec take k = function
      | x :: xs when k > 0 -> x :: take (k - 1) xs
      | _ -> []
    in
    t.decisions <- take keep t.decisions;
    t.n_decisions <- keep
  end

let breaker_code ~pid =
  int_of_float (Obs.gauge_value (Supervisor.breaker_gauge ~root_pid:pid))

(* breaker_code: 0 Closed / 1 Open / 2 Half-open / 3 Abandoned *)
let classify t ~pid ~(baseline : float option) : (Net.listener, skip) result =
  let alive =
    match Machine.proc t.machine pid with
    | Some p -> if Proc.is_live p then Some p else None
    | None -> None
  in
  match alive with
  | None -> Error Dead
  | Some p ->
      if p.Proc.frozen then Error Frozen
      else
        let l = listener t ~pid in
        if not l.Net.accepting then Error Drained
        else
          let code = breaker_code ~pid in
          let h = health t ~pid in
          if code = 1 || code = 3 then Error Breaker_open
          else if code = 2 && h.h_inflight > 0 then Error Half_open_hold
          else if Net.backlog_full l then Error Backlog_full
          else
            match baseline with
            | Some b
              when h.h_lat_samples >= t.cfg.b_straggler_min
                   && h.h_lat_ewma > t.cfg.b_straggler_factor *. b ->
                Error Straggler
            | _ -> Ok l

(** Health-score every worker and pick the least-loaded eligible one.
    Score = EWMA(in-flight) + current accept-queue depth + relative
    response-latency penalty (how many times slower than the fleet's
    best — scale-free, so cycles never swamp queue depths); ties go to
    the worker with fewer cumulative dispatches, then lower pid. A
    worker past [b_straggler_factor] × the best latency is skipped
    outright ({!Straggler}). Fault site [balancer.health]. *)
let pick t : (int * Net.listener * (int * skip) list, (int * skip) list) result
    =
  Fault.site "balancer.health";
  let skipped = ref [] in
  let best = ref None in
  List.iter
    (fun pid ->
      let h = health t ~pid in
      h.h_ewma <-
        (t.cfg.b_ewma_alpha *. float_of_int h.h_inflight)
        +. ((1. -. t.cfg.b_ewma_alpha) *. h.h_ewma);
      let baseline = lat_baseline t ~excluding:pid in
      (* age stale slowness toward the fleet baseline on every decision
         — a worker whose latency data says "slow" but which gets no
         dispatches (skipped as a straggler, or merely outscored) would
         otherwise never refresh that data and starve forever; fresh
         slow samples re-raise the EWMA immediately *)
      (match baseline with
      | Some b
        when h.h_lat_samples >= t.cfg.b_straggler_min && h.h_lat_ewma > b ->
          let e = b +. ((h.h_lat_ewma -. b) *. t.cfg.b_straggler_decay) in
          (* once the residual is inside noise, snap to the baseline so
             the score tie-break (fewest dispatches) can reach the
             worker again — an asymptotic decay never ties exactly *)
          h.h_lat_ewma <- (if e -. b < 0.05 *. b then b else e)
      | _ -> ());
      match classify t ~pid ~baseline with
      | Error reason -> skipped := (pid, reason) :: !skipped
      | Ok l ->
          let lat_term =
            match baseline with
            | Some b when b > 0. && h.h_lat_samples > 0 ->
                max 0. ((h.h_lat_ewma /. b) -. 1.)
            | _ -> 0.
          in
          let score =
            h.h_ewma +. float_of_int (Net.backlog_depth l) +. lat_term
          in
          let better =
            match !best with
            | None -> true
            | Some (_, _, s, disp) ->
                score < s || (score = s && h.h_dispatched < disp)
          in
          if better then best := Some (pid, l, score, h.h_dispatched))
    t.workers;
  match !best with
  | Some (pid, l, _, _) -> Ok (pid, l, List.rev !skipped)
  | None -> Error (List.rev !skipped)

(** Admission control: flip the shedding state against the watermarks.
    Returns true when the request must be shed. *)
let admission t =
  if t.shedding then begin
    if t.inflight <= t.cfg.b_shed_low then t.shedding <- false
  end
  else if t.inflight >= t.cfg.b_shed_high then t.shedding <- true;
  t.shedding

let set_inflight_gauge t =
  Obs.set_gauge (Obs.gauge "fleet.inflight") (float_of_int t.inflight)

(** Non-blocking dispatch of one request. [`Shed] is the typed
    over-capacity reply (admission control); [`Refused] means no worker
    was eligible (the per-pid reasons are in the decision log). Fault
    sites [balancer.dispatch] (every attempt), [balancer.health]
    (scoring) and [fleet.shed] (on the shed path). *)
let dispatch ?deadline t (text : string) :
    [ `Ticket of ticket | `Shed | `Refused ] =
  Fault.site "balancer.dispatch";
  if admission t then begin
    Fault.site "fleet.shed";
    Obs.incr (Obs.counter "fleet.shed");
    Obs.event ~kind:"balancer"
      (Printf.sprintf "shed inflight=%d high=%d" t.inflight t.cfg.b_shed_high);
    record t Shed [];
    `Shed
  end
  else
    match pick t with
    | Error skipped ->
        Obs.incr (Obs.counter "fleet.refused");
        record t All_skipped skipped;
        `Refused
    | Ok (pid, l, skipped) -> (
        Net.set_backlog_max l t.cfg.b_backlog_max;
        match Net.connect_via t.machine.Machine.net l with
        | exception Net.Refused _ ->
            (* raced to full between scoring and admit *)
            Obs.incr (Obs.counter "fleet.refused");
            record t All_skipped [ (pid, Backlog_full) ];
            `Refused
        | conn ->
            let h = health t ~pid in
            h.h_inflight <- h.h_inflight + 1;
            h.h_dispatched <- h.h_dispatched + 1;
            t.inflight <- t.inflight + 1;
            set_inflight_gauge t;
            Obs.incr
              (Obs.counter ~labels:[ ("pid", string_of_int pid) ]
                 "fleet.dispatches");
            record t (Dispatched pid) skipped;
            (match deadline with
            | Some at -> Net.set_deadline conn at
            | None -> ());
            Net.client_send conn text;
            `Ticket
              {
                tk_conn = conn;
                tk_pid = pid;
                tk_sent = t.machine.Machine.clock;
                tk_open = true;
              })

let finish t (tk : ticket) =
  if tk.tk_open then begin
    tk.tk_open <- false;
    let h = health t ~pid:tk.tk_pid in
    h.h_inflight <- max 0 (h.h_inflight - 1);
    t.inflight <- max 0 (t.inflight - 1);
    set_inflight_gauge t
  end

(** Poll a ticket against the current virtual clock. A reply resolves it
    (recording the latency in [fleet.request_cycles]); a passed deadline
    abandons the connection ([fleet.timeouts], the server may still
    waste work on the stale backlog entry); a dead worker resolves it
    with whatever bytes already arrived. *)
let poll t (tk : ticket) :
    [ `Pending | `Reply of int * string | `Timed_out of int ] =
  if not tk.tk_open then `Pending
  else if Net.client_pending tk.tk_conn > 0 then begin
    finish t tk;
    let cycles = Int64.sub t.machine.Machine.clock tk.tk_sent in
    Obs.observe (latency_hist ()) (Int64.to_float cycles);
    note_latency t ~pid:tk.tk_pid (Int64.to_float cycles);
    `Reply (tk.tk_pid, Net.client_recv tk.tk_conn)
  end
  else if Net.expired tk.tk_conn ~now:t.machine.Machine.clock then begin
    finish t tk;
    Net.client_close tk.tk_conn;
    (* a timeout is a censored latency sample at the full deadline —
       stragglers mostly emit these, and they must count against them *)
    note_latency t ~pid:tk.tk_pid
      (Int64.to_float (Int64.sub t.machine.Machine.clock tk.tk_sent));
    Obs.incr (Obs.counter "fleet.timeouts");
    Obs.event ~kind:"balancer"
      (Printf.sprintf "timeout pid=%d conn=%d" tk.tk_pid
         tk.tk_conn.Net.conn_id);
    `Timed_out tk.tk_pid
  end
  else
    let dead =
      match Machine.proc t.machine tk.tk_pid with
      | Some p -> not (Proc.is_live p)
      | None -> true
    in
    if dead then begin
      finish t tk;
      `Reply (tk.tk_pid, Net.client_recv tk.tk_conn)
    end
    else `Pending

(** One closed-loop request: dispatch, run the machine until the reply
    lands (or the deadline passes, or the serving worker dies), resolve.
    [`Timed_out pid] carries the worker the request was stranded on. *)
let request ?(max_cycles = 2_000_000) ?deadline_cycles t (text : string) :
    [ `Reply of int * string | `Refused | `Shed | `Timed_out of int ] =
  let deadline =
    Option.map
      (fun d -> Int64.add t.machine.Machine.clock d)
      deadline_cycles
  in
  match dispatch ?deadline t text with
  | `Shed -> `Shed
  | `Refused -> `Refused
  | `Ticket tk ->
      let resolved = ref `Pending in
      let pred () =
        match poll t tk with
        | `Pending -> false
        | (`Reply _ | `Timed_out _) as r ->
            resolved := r;
            true
      in
      let (_ : _) = Machine.run_until t.machine ~max_cycles ~pred in
      (match !resolved with
      | `Pending ->
          (* cycle budget ran out with the request still pending *)
          finish t tk;
          `Reply (tk.tk_pid, Net.client_recv tk.tk_conn)
      | `Reply (pid, s) -> `Reply (pid, s)
      | `Timed_out pid -> `Timed_out pid)
