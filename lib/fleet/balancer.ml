(** The virtual round-robin load balancer (DESIGN.md §6a).

    The actual fan-out lives in the kernel ({!Net.route} round-robins
    new connections over a port's accepting listeners); the balancer is
    the control plane on top: drain/undrain a worker by flipping its
    listener's [accepting] flag, drive one closed-loop request through
    whichever worker the kernel picks, and account every dispatch in the
    metric registry ([fleet.dispatches{pid}], [fleet.refused]).

    Draining is what keeps a rolling rollout's latency flat: a worker
    being checkpoint-rewritten is frozen, so routing around it beats
    queueing requests on a backlog nobody accepts from. *)

type t = {
  machine : Machine.t;
  port : int;
  workers : int list;  (** worker tree-root pids, registration order *)
}

exception Balancer_error of string

let create (machine : Machine.t) ~(port : int) ~(workers : int list) : t =
  { machine; port; workers }

let workers t = t.workers
let port t = t.port

let listener t ~pid =
  match Net.find_listener_owned t.machine.Machine.net ~port:t.port ~owner:pid with
  | Some l -> l
  | None ->
      raise
        (Balancer_error
           (Printf.sprintf "worker %d has no listener on port %d" pid t.port))

(** Stop routing new connections to [pid]; in-flight ones are untouched. *)
let drain t ~pid = (listener t ~pid).Net.accepting <- false

let undrain t ~pid = (listener t ~pid).Net.accepting <- true

(** Pids currently taken out of the rotation. *)
let draining t =
  List.filter (fun pid -> not (listener t ~pid).Net.accepting) t.workers

let accepting t =
  List.filter (fun pid -> (listener t ~pid).Net.accepting) t.workers

let dispatches ~pid =
  Obs.counter_value
    (Obs.counter ~labels:[ ("pid", string_of_int pid) ] "fleet.dispatches")

let refused () = Obs.counter_value (Obs.counter "fleet.refused")

(** One closed-loop request through the kernel's round-robin: connect,
    send, run the machine until a reply lands (or the serving worker
    dies), return the reply together with the worker that served it.
    [`Refused] when no worker accepts — every listener drained or
    frozen mid-wave. Fault site [balancer.dispatch]. *)
let request ?(max_cycles = 2_000_000) t (text : string) :
    [ `Reply of int * string | `Refused ] =
  Fault.site "balancer.dispatch";
  match Net.route t.machine.Machine.net t.port with
  | exception Net.Refused _ ->
      Obs.incr (Obs.counter "fleet.refused");
      `Refused
  | conn, l ->
      let pid = l.Net.l_owner in
      Obs.incr
        (Obs.counter ~labels:[ ("pid", string_of_int pid) ] "fleet.dispatches");
      Net.client_send conn text;
      let dead () =
        match Machine.proc t.machine pid with
        | Some p -> not (Proc.is_live p)
        | None -> true
      in
      let (_ : _) =
        Machine.run_until t.machine ~max_cycles ~pred:(fun () ->
            Net.client_pending conn > 0 || dead ())
      in
      `Reply (pid, Net.client_recv conn)
