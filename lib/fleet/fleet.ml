(** The adaptive fleet orchestrator (DESIGN.md §6a): N single-process
    workers behind the kernel's round-robin listener fan-out, kept
    customized continuously by composing every existing subsystem —
    {!Balancer} (dispatch control plane), {!Rollout} (wave-by-wave cuts
    with a {!Supervisor.guarded_cut} canary per wave), {!Drift} (live
    windowed coverage + trap-rate closed loop), one {!Dynacut.session}
    (and hence one crash-consistency journal) per worker, and a fleet
    {!Journal.Manifest} that makes a crash mid-rollout recoverable back
    to a uniform fleet. *)

let manifest_dir = "/tmpfs/fleet"

type t = {
  machine : Machine.t;
  port : int;
  balancer : Balancer.t;
  workers : Rollout.worker list;
  manifest : Journal.Manifest.t;
  blocks : Covgraph.block list;
  policy : Dynacut.policy;
  mutable drift : Drift.t option;
  mutable outcome : Rollout.outcome option;
}

exception Fleet_error of string

let worker_states = [ "serving"; "cut"; "reverted"; "reenabled"; "recut" ]

(** Refresh the [fleet.workers{state=…}] gauge family from the live
    worker records. *)
let refresh_gauges t =
  List.iter
    (fun state ->
      let n =
        List.length
          (List.filter (fun w -> w.Rollout.w_state = state) t.workers)
      in
      Obs.set_gauge
        (Obs.gauge ~labels:[ ("state", state) ] "fleet.workers")
        (float_of_int n))
    worker_states

(** Assemble a fleet over already-booted workers (e.g. from
    [Workload.spawn_fleet]): every pid must be the root of its own tree
    and own a listener on [port]. *)
let create ?balancer:bcfg (machine : Machine.t) ~(port : int)
    ~(pids : int list) ~(blocks : Covgraph.block list)
    ~(policy : Dynacut.policy) : t =
  if pids = [] then raise (Fleet_error "fleet needs at least one worker");
  let balancer = Balancer.create ?config:bcfg machine ~port ~workers:pids in
  (* creating the balancer validates the listeners exist *)
  List.iter (fun pid -> ignore (Balancer.listener balancer ~pid)) pids;
  let workers = List.map (fun pid -> Rollout.make_worker machine ~pid) pids in
  let manifest = Journal.Manifest.attach machine.Machine.fs ~dir:manifest_dir in
  let t =
    {
      machine;
      port;
      balancer;
      workers;
      manifest;
      blocks;
      policy;
      drift = None;
      outcome = None;
    }
  in
  refresh_gauges t;
  t

let workers t = t.workers
let balancer t = t.balancer
let manifest t = t.manifest

let worker t ~pid =
  match List.find_opt (fun w -> w.Rollout.w_pid = pid) t.workers with
  | Some w -> w
  | None -> raise (Fleet_error (Printf.sprintf "no worker with pid %d" pid))

(** One closed-loop request through the balancer. *)
let request ?max_cycles ?deadline_cycles t text =
  Balancer.request ?max_cycles ?deadline_cycles t.balancer text

(** Saturate the fleet open-loop (see {!Loadgen.run}). *)
let overload t (cfg : Loadgen.config) ~(text : string) : Loadgen.stats =
  Loadgen.run t.balancer cfg ~text

(** Rolling rollout of the fleet's cut (see {!Rollout.run}). A completed
    rollout compacts the manifest down to a checkpoint record, so the
    append-only file stays bounded across repeated rollouts. *)
let rollout ?(config = Rollout.default_config) t ~(drive : unit -> unit) () :
    Rollout.outcome * Rollout.wave_report list =
  let outcome, reports =
    Rollout.run ~manifest:t.manifest ~balancer:t.balancer ~workers:t.workers
      ~config ~blocks:t.blocks ~policy:t.policy ~drive ()
  in
  (match outcome with
  | Rollout.Completed _ -> Journal.Manifest.compact t.manifest
  | Rollout.Halted _ -> ());
  t.outcome <- Some outcome;
  refresh_gauges t;
  (outcome, reports)

(** Start the drift monitor on [collector] (which must trace every
    worker — [Workload.spawn_fleet ~traced:true] does). *)
let start_drift ?(config = Drift.default_config) t
    ~(collector : Collector.t) () : unit =
  t.drift <-
    Some
      (Drift.create ~collector ~workers:t.workers ~candidate:t.blocks
         ~policy:t.policy config)

(** One control-loop step: drift window sampling and its re-enable /
    re-cut decisions. Call between traffic slices. *)
let tick t : Drift.action option =
  match t.drift with
  | None -> None
  | Some d ->
      let a = Drift.tick d in
      if a <> None then refresh_gauges t;
      a

let drift_monitor t =
  match t.drift with
  | Some d -> d
  | None -> raise (Fleet_error "drift monitor not started")

(* ------------------------------------------------------------------ *)
(* Fleet-wide crash recovery                                           *)

type recovery = {
  fr_workers : (int * Dynacut.recovery_action) list;
      (** per-worker [Dynacut.recover] results, in pid order *)
  fr_unwound : int list;
      (** open-wave members whose committed cut was reverted back to
          pristine so the halted wave is uniform *)
  fr_wave : int;  (** the wave the crash interrupted; 0 when none *)
  fr_torn : bool;  (** the manifest's tail was torn *)
}

let pp_recovery ppf r =
  Format.fprintf ppf "fleet-recovery wave=%d unwound=[%s] workers=[%s]"
    r.fr_wave
    (String.concat ";" (List.map string_of_int r.fr_unwound))
    (String.concat ";"
       (List.map
          (fun (pid, a) ->
            Printf.sprintf "%d:%s" pid
              (match a with
              | `Nothing -> "nothing"
              | `Thawed -> "thawed"
              | `Rolled_back -> "rolled-back"
              | `Completed -> "completed"))
          r.fr_workers))

(** Recover a fleet after a controller death: first each worker's own
    journal replays ({!Dynacut.recover} — per-pid "applied XOR
    unchanged"), then the fleet manifest. If the manifest shows a wave
    that began but neither finished nor halted, the crash interrupted it
    mid-rollout: members whose cut already committed (their [Worker_cut]
    is in the manifest and their own journal is quiescent) are reverted
    from their pristine images, so the fleet converges to the same state
    a live controller's halt would have produced — completed waves cut,
    the interrupted wave original. Records [Rollout_halted], making a
    second recovery pass a no-op. *)
let recover (machine : Machine.t) ~(pids : int list) : recovery =
  let fr_workers =
    List.map (fun pid -> (pid, (Dynacut.recover machine ~root_pid:pid).Dynacut.rec_action)) pids
  in
  let manifest = Journal.Manifest.attach machine.Machine.fs ~dir:manifest_dir in
  let entries, fr_torn = Journal.Manifest.read manifest in
  let s = Journal.Manifest.summarize entries in
  let fr_wave, fr_unwound =
    match s.Journal.Manifest.m_open with
    | None -> (0, [])
    | Some (wave, _planned, cut_pids) ->
        let unwound =
          List.filter_map
            (fun pid ->
              if not (List.mem pid pids) then None
              else begin
                let sess = Dynacut.create machine ~root_pid:pid in
                let pristine = Dynacut.pristine_path sess pid in
                if not (Vfs.exists machine.Machine.fs pristine) then None
                else begin
                  (match Machine.proc machine pid with
                  | Some p when Proc.is_live p -> Machine.reap machine ~pid
                  | _ -> ());
                  ignore (Restore.respawn machine ~path:pristine);
                  Obs.event ~kind:"fleet"
                    (Printf.sprintf "recovery unwound pid=%d of wave %d" pid
                       wave);
                  Some pid
                end
              end)
            cut_pids
        in
        Journal.Manifest.append manifest
          (Journal.Manifest.Rollout_halted { wave });
        Journal.Manifest.compact manifest;
        (wave, unwound)
  in
  let r = { fr_workers; fr_unwound; fr_wave; fr_torn } in
  Obs.event ~kind:"fleet" (Format.asprintf "%a" pp_recovery r);
  r
