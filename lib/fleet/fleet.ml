(** The adaptive fleet orchestrator (DESIGN.md §6a): N single-process
    workers behind the kernel's round-robin listener fan-out, kept
    customized continuously by composing every existing subsystem —
    {!Balancer} (dispatch control plane), {!Rollout} (wave-by-wave cuts
    with a {!Supervisor.guarded_cut} canary per wave), {!Drift} (live
    windowed coverage + trap-rate closed loop), one {!Dynacut.session}
    (and hence one crash-consistency journal) per worker, and a fleet
    {!Journal.Manifest} that makes a crash mid-rollout recoverable back
    to a uniform fleet. *)

let manifest_dir = "/tmpfs/fleet"

(** Background memory-integrity scrubbing (DESIGN.md §6d): one
    {!Integrity} scrubber per worker, rotated one worker per interval. *)
type scrub_config = {
  sc_interval : int;  (** virtual cycles between scrub slices *)
  sc_quantum : int;  (** pages audited per slice *)
  sc_max_page_repairs : int;
      (** page repairs tolerated before a re-divergence of the same page
          escalates to a full respawn *)
}

let default_scrub_config =
  { sc_interval = 20_000; sc_quantum = 8; sc_max_page_repairs = 1 }

type scrub_state = {
  ss_config : scrub_config;
  ss_integrity : (int * Integrity.t) list;  (** per worker pid *)
  ss_history : (int * int64, int) Hashtbl.t;
      (** (pid, page) -> completed repairs, for re-divergence escalation *)
  mutable ss_due : int64;
  mutable ss_rotor : int;  (** which worker the next slice audits *)
}

type t = {
  machine : Machine.t;
  port : int;
  balancer : Balancer.t;
  workers : Rollout.worker list;
  manifest : Journal.Manifest.t;
  blocks : Covgraph.block list;
  policy : Dynacut.policy;
  mutable drift : Drift.t option;
  mutable outcome : Rollout.outcome option;
  mutable scrub : scrub_state option;
}

exception Fleet_error of string

let worker_states = [ "serving"; "cut"; "reverted"; "reenabled"; "recut" ]

(** Refresh the [fleet.workers{state=…}] gauge family from the live
    worker records. *)
let refresh_gauges t =
  List.iter
    (fun state ->
      let n =
        List.length
          (List.filter (fun w -> w.Rollout.w_state = state) t.workers)
      in
      Obs.set_gauge
        (Obs.gauge ~labels:[ ("state", state) ] "fleet.workers")
        (float_of_int n))
    worker_states

(** Assemble a fleet over already-booted workers (e.g. from
    [Workload.spawn_fleet]): every pid must be the root of its own tree
    and own a listener on [port]. *)
let create ?balancer:bcfg (machine : Machine.t) ~(port : int)
    ~(pids : int list) ~(blocks : Covgraph.block list)
    ~(policy : Dynacut.policy) : t =
  if pids = [] then raise (Fleet_error "fleet needs at least one worker");
  let balancer = Balancer.create ?config:bcfg machine ~port ~workers:pids in
  (* creating the balancer validates the listeners exist *)
  List.iter (fun pid -> ignore (Balancer.listener balancer ~pid)) pids;
  let workers = List.map (fun pid -> Rollout.make_worker machine ~pid) pids in
  let manifest = Journal.Manifest.attach machine.Machine.fs ~dir:manifest_dir in
  let t =
    {
      machine;
      port;
      balancer;
      workers;
      manifest;
      blocks;
      policy;
      drift = None;
      outcome = None;
      scrub = None;
    }
  in
  refresh_gauges t;
  t

let workers t = t.workers
let balancer t = t.balancer
let manifest t = t.manifest

let worker t ~pid =
  match List.find_opt (fun w -> w.Rollout.w_pid = pid) t.workers with
  | Some w -> w
  | None -> raise (Fleet_error (Printf.sprintf "no worker with pid %d" pid))

(** One closed-loop request through the balancer. *)
let request ?max_cycles ?deadline_cycles t text =
  Balancer.request ?max_cycles ?deadline_cycles t.balancer text

(** Saturate the fleet open-loop (see {!Loadgen.run}). *)
let overload t (cfg : Loadgen.config) ~(text : string) : Loadgen.stats =
  Loadgen.run t.balancer cfg ~text

(** Rolling rollout of the fleet's cut (see {!Rollout.run}). A completed
    rollout compacts the manifest down to a checkpoint record, so the
    append-only file stays bounded across repeated rollouts. *)
let rollout ?(config = Rollout.default_config) t ~(drive : unit -> unit) () :
    Rollout.outcome * Rollout.wave_report list =
  let outcome, reports =
    Rollout.run ~manifest:t.manifest ~balancer:t.balancer ~workers:t.workers
      ~config ~blocks:t.blocks ~policy:t.policy ~drive ()
  in
  (match outcome with
  | Rollout.Completed _ -> Journal.Manifest.compact t.manifest
  | Rollout.Halted _ -> ());
  t.outcome <- Some outcome;
  refresh_gauges t;
  (outcome, reports)

(** Start the drift monitor on [collector] (which must trace every
    worker — [Workload.spawn_fleet ~traced:true] does). *)
let start_drift ?(config = Drift.default_config) t
    ~(collector : Collector.t) () : unit =
  t.drift <-
    Some
      (Drift.create ~collector ~workers:t.workers ~candidate:t.blocks
         ~policy:t.policy config)

(** One control-loop step: drift window sampling and its re-enable /
    re-cut decisions. Call between traffic slices. *)
let tick t : Drift.action option =
  match t.drift with
  | None -> None
  | Some d ->
      let a = Drift.tick d in
      if a <> None then refresh_gauges t;
      a

let drift_monitor t =
  match t.drift with
  | Some d -> d
  | None -> raise (Fleet_error "drift monitor not started")

(* ------------------------------------------------------------------ *)
(* Fleet-wide crash recovery                                           *)

type recovery = {
  fr_workers : (int * Dynacut.recovery_action) list;
      (** per-worker [Dynacut.recover] results, in pid order *)
  fr_unwound : int list;
      (** open-wave members whose committed cut was reverted back to
          pristine so the halted wave is uniform *)
  fr_wave : int;  (** the wave the crash interrupted; 0 when none *)
  fr_torn : bool;  (** the manifest's tail was torn *)
}

let pp_recovery ppf r =
  Format.fprintf ppf "fleet-recovery wave=%d unwound=[%s] workers=[%s]"
    r.fr_wave
    (String.concat ";" (List.map string_of_int r.fr_unwound))
    (String.concat ";"
       (List.map
          (fun (pid, a) ->
            Printf.sprintf "%d:%s" pid
              (match a with
              | `Nothing -> "nothing"
              | `Thawed -> "thawed"
              | `Rolled_back -> "rolled-back"
              | `Completed -> "completed"))
          r.fr_workers))

(** Recover a fleet after a controller death: first each worker's own
    journal replays ({!Dynacut.recover} — per-pid "applied XOR
    unchanged"), then the fleet manifest. If the manifest shows a wave
    that began but neither finished nor halted, the crash interrupted it
    mid-rollout: members whose cut already committed (their [Worker_cut]
    is in the manifest and their own journal is quiescent) are reverted
    from their pristine images, so the fleet converges to the same state
    a live controller's halt would have produced — completed waves cut,
    the interrupted wave original. Records [Rollout_halted], making a
    second recovery pass a no-op. *)
let recover (machine : Machine.t) ~(pids : int list) : recovery =
  let fr_workers =
    List.map (fun pid -> (pid, (Dynacut.recover machine ~root_pid:pid).Dynacut.rec_action)) pids
  in
  let manifest = Journal.Manifest.attach machine.Machine.fs ~dir:manifest_dir in
  let entries, fr_torn = Journal.Manifest.read manifest in
  let s = Journal.Manifest.summarize entries in
  let fr_wave, fr_unwound =
    match s.Journal.Manifest.m_open with
    | None -> (0, [])
    | Some (wave, _planned, cut_pids) ->
        let unwound =
          List.filter_map
            (fun pid ->
              if not (List.mem pid pids) then None
              else begin
                let sess = Dynacut.create machine ~root_pid:pid in
                let pristine = Dynacut.pristine_path sess pid in
                if not (Vfs.exists machine.Machine.fs pristine) then None
                else begin
                  (match Machine.proc machine pid with
                  | Some p when Proc.is_live p -> Machine.reap machine ~pid
                  | _ -> ());
                  ignore (Restore.respawn machine ~path:pristine);
                  Obs.event ~kind:"fleet"
                    (Printf.sprintf "recovery unwound pid=%d of wave %d" pid
                       wave);
                  Some pid
                end
              end)
            cut_pids
        in
        Journal.Manifest.append manifest
          (Journal.Manifest.Rollout_halted { wave });
        Journal.Manifest.compact manifest;
        (wave, unwound)
  in
  let r = { fr_workers; fr_unwound; fr_wave; fr_torn } in
  Obs.event ~kind:"fleet" (Format.asprintf "%a" pp_recovery r);
  r

(* ------------------------------------------------------------------ *)
(* Memory-integrity scrubbing (DESIGN.md §6d)                          *)

type scrub_report = {
  sr_pid : int;
  sr_findings : Integrity.finding list;
  sr_repaired : (Integrity.finding * string) list;
  sr_respawned : bool;
  sr_refused : string option;
      (** an injected fault refused part of the slice; retried next turn *)
}

let start_scrub ?(config = default_scrub_config) (t : t) : unit =
  t.scrub <-
    Some
      {
        ss_config = config;
        ss_integrity =
          List.map
            (fun w -> (w.Rollout.w_pid, Integrity.create w.Rollout.w_session))
            t.workers;
        ss_history = Hashtbl.create 16;
        ss_due =
          Int64.add t.machine.Machine.clock (Int64.of_int config.sc_interval);
        ss_rotor = 0;
      }

let scrub_state_exn t =
  match t.scrub with
  | Some st -> st
  | None -> raise (Fleet_error "scrubber not started")

let integrity t ~pid =
  match List.assoc_opt pid (scrub_state_exn t).ss_integrity with
  | Some i -> i
  | None -> raise (Fleet_error (Printf.sprintf "no scrubber for pid %d" pid))

(* Full respawn from the newest sealed image — working if the worker was
   ever cut (the cut survives), pristine otherwise (then the session
   bookkeeping must be forgotten). False when no image exists at all;
   the caller keeps the worker quarantined. *)
let escalate t (st : scrub_state) (integ : Integrity.t) ~(pid : int) : bool =
  let sess = (worker t ~pid).Rollout.w_session in
  let working = Dynacut.image_path sess pid in
  let pristine = Dynacut.pristine_path sess pid in
  let path, from_pristine =
    if Vfs.exists t.machine.Machine.fs working then (working, false)
    else (pristine, true)
  in
  if not (Vfs.exists t.machine.Machine.fs path) then false
  else begin
    Integrity.charge_respawn integ ~pid;
    (match Machine.proc t.machine pid with
    | Some p when Proc.is_live p -> Machine.reap t.machine ~pid
    | _ -> ());
    ignore (Dynacut.journaled_respawn sess ~pid ~path);
    if from_pristine then Dynacut.forget_pid sess ~pid;
    Hashtbl.iter
      (fun ((p, _) as k) _ -> if p = pid then Hashtbl.remove st.ss_history k)
      (Hashtbl.copy st.ss_history);
    Integrity.rebaseline integ ~pid;
    Obs.incr (Obs.counter "fleet.scrub.respawns");
    Obs.event ~kind:"fleet"
      (Printf.sprintf "scrub escalated: pid=%d respawned from %s" pid path);
    true
  end

(* The graduated response to a slice's findings: quarantine the worker
   (drain dispatch away so no request is served off a corrupted page),
   page-repair each finding, escalate to a full respawn when a repair
   fails, does not stick, or the same page diverges again. *)
let heal t (st : scrub_state) ~(pid : int) (integ : Integrity.t)
    (findings : Integrity.finding list) : scrub_report =
  if findings = [] then
    {
      sr_pid = pid;
      sr_findings = [];
      sr_repaired = [];
      sr_respawned = false;
      sr_refused = None;
    }
  else begin
    Balancer.drain t.balancer ~pid;
    Obs.incr (Obs.counter "fleet.scrub.quarantines");
    let repaired = ref [] and must_respawn = ref false in
    List.iter
      (fun (f : Integrity.finding) ->
        if not !must_respawn then
          let key = (pid, f.Integrity.f_vaddr) in
          let seen =
            Option.value ~default:0 (Hashtbl.find_opt st.ss_history key)
          in
          if seen >= st.ss_config.sc_max_page_repairs then
            (* the page was already healed and diverged again — the
               damage is not a one-off, stop trusting page repair *)
            must_respawn := true
          else
            match Integrity.repair integ f with
            | Integrity.Repaired src when Integrity.recheck integ f ->
                Hashtbl.replace st.ss_history key (seen + 1);
                repaired := (f, src) :: !repaired
            | Integrity.Repaired _ | Integrity.Repair_failed _ ->
                must_respawn := true)
      findings;
    let respawned = if !must_respawn then escalate t st integ ~pid else false in
    if respawned || not !must_respawn then Balancer.undrain t.balancer ~pid;
    {
      sr_pid = pid;
      sr_findings = findings;
      sr_repaired = List.rev !repaired;
      sr_respawned = respawned;
      sr_refused = None;
    }
  end

(** One background scrub step: when the interval elapsed, audit a
    [sc_quantum]-page slice of the next worker in rotation and heal
    whatever diverged. Injected faults from the pipeline's failure
    domain refuse the slice (the worker is un-quarantined, the slice
    retried on its next rotation turn); a [Kill] propagates — the
    controller itself died. Call between traffic slices, like {!tick}. *)
let scrub_tick t : scrub_report option =
  match t.scrub with
  | None -> None
  | Some st ->
      if Int64.compare t.machine.Machine.clock st.ss_due < 0 then None
      else begin
        st.ss_due <-
          Int64.add t.machine.Machine.clock
            (Int64.of_int st.ss_config.sc_interval);
        match st.ss_integrity with
        | [] -> None
        | _ :: _ ->
            let n = List.length st.ss_integrity in
            let idx = st.ss_rotor mod n in
            st.ss_rotor <- (idx + 1) mod n;
            let pid, integ = List.nth st.ss_integrity idx in
            let refused site =
              Obs.incr (Obs.counter "fleet.scrub.refused");
              (try Balancer.undrain t.balancer ~pid
               with Balancer.Balancer_error _ -> ());
              Some
                {
                  sr_pid = pid;
                  sr_findings = [];
                  sr_repaired = [];
                  sr_respawned = false;
                  sr_refused = Some site;
                }
            in
            (match
               heal t st ~pid integ
                 (Integrity.scrub integ ~pids:[ pid ]
                    ~quantum:st.ss_config.sc_quantum ())
             with
            | r -> Some r
            | exception Fault.Injected { site; _ } -> refused site
            | exception Fault.Storage_error { site; _ } -> refused site
            | exception Validate.Validate_error msg -> refused msg
            | exception Restore.Restore_error msg -> refused msg
            | exception Dynacut.Dynacut_error msg -> refused msg)
      end

(** Forced full audit of one worker — the CLI's [dynacut scrub] and the
    chaos probes. Starts the scrubber if needed; refusals propagate. *)
let scrub_now t ~pid : scrub_report =
  if t.scrub = None then start_scrub t;
  let st = scrub_state_exn t in
  let integ = integrity t ~pid in
  heal t st ~pid integ (Integrity.scrub_full integ ~pids:[ pid ] ())
