(** Rolling wave-by-wave rollout of one cut across a worker fleet
    (DESIGN.md §6a).

    Workers are chunked into waves. Each wave opens with a manifest
    intent ([Wave_begin]), cuts its first member as a canary through
    {!Supervisor.guarded_cut} (the per-wave SLO gate: observe trap
    deltas over [canary_windows] windows of live traffic, revert on
    breach), then applies plain transactional cuts to the remaining
    members — each one drained from the balancer while frozen and
    recorded in the manifest ([Worker_cut]) as it commits. A canary
    rejection or a member rollback halts the rollout: the current wave
    is reverted to byte-original, earlier waves {e stay cut}, and the
    manifest records [Rollout_halted] so recovery knows where the
    uniform prefix ends. *)

(** One fleet member: its own single-process tree, its own Dynacut
    session (hence its own crash-consistency journal + tmpfs images),
    and the undo journals of whatever cut it currently carries. *)
type worker = {
  w_pid : int;
  w_session : Dynacut.session;
  mutable w_journals : Rewriter.journal list;  (** non-empty = cut live *)
  mutable w_wave : int;  (** wave index (1-based); -1 before any rollout *)
  mutable w_state : string;
      (** last transition: serving | cut | reverted | reenabled | recut *)
  mutable w_since : int64;  (** virtual clock of the last transition *)
}

let make_worker (machine : Machine.t) ~(pid : int) : worker =
  {
    w_pid = pid;
    w_session = Dynacut.create machine ~root_pid:pid;
    w_journals = [];
    w_wave = -1;
    w_state = "serving";
    w_since = machine.Machine.clock;
  }

let cut_live (w : worker) = w.w_journals <> []

(** Record a worker state transition in the event ring and the per-pid
    gauges `dynacut top` renders. *)
let transition (w : worker) (state : string) : unit =
  let m = w.w_session.Dynacut.machine in
  w.w_state <- state;
  w.w_since <- m.Machine.clock;
  Obs.event ~kind:"fleet"
    (Printf.sprintf "worker pid=%d -> %s" w.w_pid state);
  Obs.set_gauge
    (Obs.gauge ~labels:[ ("pid", string_of_int w.w_pid) ] "fleet.worker.wave")
    (float_of_int w.w_wave)

(** Revert a worker's live cut: transactional re-enable, with a pristine
    respawn as the last resort (same escalation as the supervisor's
    canary revert). No-op when no cut is live. *)
let revert_worker (w : worker) : unit =
  if cut_live w then begin
    (match Dynacut.try_reenable w.w_session w.w_journals with
    | { Dynacut.r_outcome = `Applied | `Degraded; _ } -> ()
    | { Dynacut.r_outcome = `Rolled_back _; _ } ->
        ignore
          (Dynacut.journaled_respawn w.w_session ~pid:w.w_pid
             ~path:(Dynacut.pristine_path w.w_session w.w_pid));
        Dynacut.forget_pid w.w_session ~pid:w.w_pid);
    w.w_journals <- [];
    transition w "reverted"
  end

(* ------------------------------------------------------------------ *)

type config = {
  r_waves : int;  (** number of waves the fleet is chunked into *)
  r_sup : Supervisor.config;  (** per-wave canary SLO parameters *)
}

let default_config = { r_waves = 3; r_sup = Supervisor.default_config }

(** Chunk [pids] into [waves] contiguous groups, earlier waves no
    smaller than later ones (the canary wave carries the extra). *)
let plan ~(pids : int list) ~(waves : int) : int list list =
  let n = List.length pids in
  let waves = max 1 (min waves (max n 1)) in
  let base = n / waves and extra = n mod waves in
  let rec go i rest =
    if i >= waves then []
    else
      let k = base + if i < extra then 1 else 0 in
      let rec take k = function
        | x :: xs when k > 0 ->
            let h, t = take (k - 1) xs in
            (x :: h, t)
        | xs -> ([], xs)
      in
      let wave, rest = take k rest in
      wave :: go (i + 1) rest
  in
  List.filter (fun w -> w <> []) (go 0 pids)

type wave_report = {
  wr_wave : int;  (** 1-based *)
  wr_pids : int list;
  wr_pause_cycles : int64;
      (** virtual cycles the wave took start-to-done — the rollout
          "pause time" the bench tracks *)
}

type outcome =
  | Completed of { waves : int }
  | Halted of { wave : int; reason : string }

let pp_outcome ppf = function
  | Completed { waves } -> Format.fprintf ppf "completed(waves=%d)" waves
  | Halted { wave; reason } ->
      Format.fprintf ppf "halted(wave=%d,%s)" wave reason

(** Run the rollout. [drive] advances the machine and its traffic — it
    is handed to the canary's SLO observation windows, exactly like
    {!Supervisor.guarded_cut}. Fault site [fleet.wave] fires once per
    wave, before the wave's manifest intent. *)
let run ~(manifest : Journal.Manifest.t) ~(balancer : Balancer.t)
    ~(workers : worker list) ~(config : config)
    ~(blocks : Covgraph.block list) ~(policy : Dynacut.policy)
    ~(drive : unit -> unit) () : outcome * wave_report list =
  let machine =
    match workers with
    | w :: _ -> w.w_session.Dynacut.machine
    | [] -> invalid_arg "Rollout.run: empty fleet"
  in
  let waves_plan =
    plan ~pids:(List.map (fun w -> w.w_pid) workers) ~waves:config.r_waves
  in
  let reports = ref [] in
  let halted = ref None in
  let halt wave reason =
    Journal.Manifest.append manifest (Journal.Manifest.Rollout_halted { wave });
    Obs.event ~kind:"fleet"
      (Printf.sprintf "rollout halted wave=%d (%s)" wave reason);
    halted := Some (wave, reason)
  in
  List.iteri
    (fun i wave_pids ->
      if !halted = None then begin
        let wave = i + 1 in
        Fault.site "fleet.wave";
        Journal.Manifest.append manifest
          (Journal.Manifest.Wave_begin { wave; pids = wave_pids });
        Obs.set_gauge (Obs.gauge "fleet.wave") (float_of_int wave);
        Obs.event ~kind:"fleet"
          (Printf.sprintf "wave %d begin pids=[%s]" wave
             (String.concat ";" (List.map string_of_int wave_pids)));
        let start = machine.Machine.clock in
        let wave_workers =
          List.filter (fun w -> List.mem w.w_pid wave_pids) workers
        in
        match wave_workers with
        | [] ->
            Journal.Manifest.append manifest (Journal.Manifest.Wave_done { wave })
        | canary :: rest -> (
            List.iter (fun w -> w.w_wave <- wave) wave_workers;
            (* the wave's first member is the canary: cut under live,
               undrained traffic so the SLO observation means something *)
            let sup =
              Supervisor.create canary.w_session ~config:config.r_sup ~blocks
                ~policy
            in
            match Supervisor.guarded_cut sup ~canary:true ~drive () with
            | Supervisor.R_canary_rejected ->
                transition canary "reverted";
                halt wave "canary-rejected"
            | Supervisor.R_promotion_failed ->
                transition canary "reverted";
                halt wave "promotion-failed"
            | Supervisor.R_rolled_back stage ->
                halt wave ("canary-cut rolled back at " ^ stage)
            | Supervisor.R_promoted -> (
                canary.w_journals <- Supervisor.journals sup;
                transition canary "cut";
                Journal.Manifest.append manifest
                  (Journal.Manifest.Worker_cut { wave; pid = canary.w_pid });
                (* remaining members: plain transactional cuts, each
                   drained from the rotation while frozen *)
                let failed = ref None in
                List.iter
                  (fun w ->
                    if !failed = None then begin
                      Balancer.drain balancer ~pid:w.w_pid;
                      (match
                         Dynacut.try_cut w.w_session ~blocks ~policy ()
                       with
                      | { Dynacut.r_outcome = `Applied | `Degraded;
                          r_journals;
                          _;
                        } ->
                          w.w_journals <- r_journals;
                          transition w "cut";
                          Journal.Manifest.append manifest
                            (Journal.Manifest.Worker_cut { wave; pid = w.w_pid })
                      | { Dynacut.r_outcome = `Rolled_back rb; _ } ->
                          failed := Some rb.Dynacut.rb_stage);
                      Balancer.undrain balancer ~pid:w.w_pid
                    end)
                  rest;
                match !failed with
                | None ->
                    Journal.Manifest.append manifest
                      (Journal.Manifest.Wave_done { wave });
                    reports :=
                      {
                        wr_wave = wave;
                        wr_pids = wave_pids;
                        wr_pause_cycles = Int64.sub machine.Machine.clock start;
                      }
                      :: !reports
                | Some stage ->
                    (* uniform wave tail: revert this wave's cut members
                       (earlier waves stay cut) *)
                    List.iter revert_worker wave_workers;
                    halt wave ("member cut rolled back at " ^ stage)))
      end)
    waves_plan;
  match !halted with
  | None ->
      let waves = List.length waves_plan in
      Journal.Manifest.append manifest (Journal.Manifest.Rollout_done { waves });
      Obs.event ~kind:"fleet" (Printf.sprintf "rollout done waves=%d" waves);
      (Completed { waves }, List.rev !reports)
  | Some (wave, reason) -> (Halted { wave; reason }, List.rev !reports)
