(** The adaptive fleet orchestrator (DESIGN.md §6a).

    Runs N single-process guest workers behind the kernel's round-robin
    listener fan-out and keeps the whole fleet customized continuously:

    - {!rollout} applies one cut wave-by-wave, with a
      {!Supervisor.guarded_cut} canary gating every wave and the fleet
      manifest journaling each step;
    - {!start_drift}/{!tick} run the coverage-drift closed loop: live
      windowed drcov sampling, automatic fleet-wide re-enable on a trap
      storm, automatic re-cut after a cold-coverage hysteresis;
    - {!recover} replays a controller crash mid-rollout back to a
      uniform fleet — completed waves cut, the interrupted wave
      original.

    Build the workers with [Workload.spawn_fleet], which boots N
    processes of one app on a single machine. *)

type t

exception Fleet_error of string

val manifest_dir : string
(** Machine-fs directory holding the fleet manifest ([/tmpfs/fleet]). *)

val create :
  ?balancer:Balancer.config ->
  Machine.t ->
  port:int ->
  pids:int list ->
  blocks:Covgraph.block list ->
  policy:Dynacut.policy ->
  t
(** Assemble a fleet over already-booted workers. Every pid must be the
    root of its own process tree and own a listener on [port]; each gets
    its own {!Dynacut.session} (and crash journal). [?balancer] tunes
    the dispatcher's accept-queue bound and shed watermarks
    ({!Balancer.default_config} otherwise). Raises {!Fleet_error} (or
    {!Balancer.Balancer_error}) otherwise. *)

val workers : t -> Rollout.worker list
val worker : t -> pid:int -> Rollout.worker
val balancer : t -> Balancer.t
val manifest : t -> Journal.Manifest.t

val request :
  ?max_cycles:int ->
  ?deadline_cycles:int64 ->
  t ->
  string ->
  [ `Reply of int * string | `Refused | `Shed | `Timed_out of int ]
(** One closed-loop request through the health-scored balancer: the
    reply plus the pid that served it, [`Refused] when no worker is
    eligible, [`Shed] when admission control rejects it over-capacity,
    or [`Timed_out pid] when [?deadline_cycles] passed first. *)

val overload : t -> Loadgen.config -> text:string -> Loadgen.stats
(** Saturate the fleet with the deterministic open-loop generator
    ({!Loadgen.run}): Poisson arrivals, deadlines, budgeted retries. *)

val rollout :
  ?config:Rollout.config ->
  t ->
  drive:(unit -> unit) ->
  unit ->
  Rollout.outcome * Rollout.wave_report list
(** Rolling rollout of the fleet's cut; see {!Rollout.run}. [drive]
    advances machine + traffic for the canary observation windows. *)

val start_drift : ?config:Drift.config -> t -> collector:Collector.t -> unit -> unit
(** Start the drift monitor. [collector] must trace every worker
    ([Workload.spawn_fleet ~traced:true] arranges that). *)

val tick : t -> Drift.action option
(** One control-loop step (drift sampling + decisions); call between
    traffic slices. [None] before {!start_drift}. *)

val drift_monitor : t -> Drift.t
(** Raises {!Fleet_error} before {!start_drift}. *)

val refresh_gauges : t -> unit
(** Refresh the [fleet.workers{state=…}] gauge family. *)

(** {2 Fleet-wide crash recovery} *)

type recovery = {
  fr_workers : (int * Dynacut.recovery_action) list;
      (** per-worker [Dynacut.recover] results, in pid order *)
  fr_unwound : int list;
      (** open-wave members whose committed cut was reverted back to
          pristine so the halted wave is uniform *)
  fr_wave : int;  (** the wave the crash interrupted; 0 when none *)
  fr_torn : bool;  (** the manifest's tail was torn *)
}

val pp_recovery : Format.formatter -> recovery -> unit

(** {2 Memory-integrity scrubbing (DESIGN.md §6d)}

    A background {!Integrity} scrubber per worker, fleet-rotated: every
    [sc_interval] virtual cycles one worker has a [sc_quantum]-page
    slice of its immutable pages audited. A digest mismatch quarantines
    the worker (balancer drain), heals the page from the best trusted
    source, and un-quarantines; a failed or non-sticking repair — or a
    page diverging {e again} after repair — escalates to a full respawn
    from the newest sealed image. *)

type scrub_config = {
  sc_interval : int;  (** virtual cycles between scrub slices *)
  sc_quantum : int;  (** pages audited per slice *)
  sc_max_page_repairs : int;
      (** page repairs tolerated before a re-divergence of the same page
          escalates to a full respawn *)
}

val default_scrub_config : scrub_config

type scrub_report = {
  sr_pid : int;  (** the worker this slice audited *)
  sr_findings : Integrity.finding list;
  sr_repaired : (Integrity.finding * string) list;
      (** healed findings with the repair source that won *)
  sr_respawned : bool;  (** the graduated response reached respawn *)
  sr_refused : string option;
      (** an injected fault refused part of the slice; retried on the
          worker's next rotation turn *)
}

val start_scrub : ?config:scrub_config -> t -> unit
(** Build one scrubber per worker (baselines capture lazily at the
    first audit). *)

val scrub_tick : t -> scrub_report option
(** One background scrub step; call between traffic slices, like
    {!tick}. [None] before {!start_scrub}, before the interval elapses,
    or — once due — audits the next worker in rotation and heals
    whatever diverged. [Fault.Controller_killed] propagates. *)

val scrub_now : t -> pid:int -> scrub_report
(** Forced full audit + heal of one worker (the CLI's [dynacut scrub]
    and the chaos probes). Starts the scrubber if needed; injected
    refusals propagate to the caller. *)

val integrity : t -> pid:int -> Integrity.t
(** The worker's scrubber; raises {!Fleet_error} before
    {!start_scrub}. *)

val recover : Machine.t -> pids:int list -> recovery
(** Recover a fleet after a controller death: per-worker journal replay
    first (per-pid "applied XOR unchanged"), then the manifest — a wave
    that began but never finished is unwound (its committed members
    reverted from pristine images) and recorded as halted, so the fleet
    converges to completed-waves-cut / interrupted-wave-original and a
    second pass is a no-op. *)
