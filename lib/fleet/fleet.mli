(** The adaptive fleet orchestrator (DESIGN.md §6a).

    Runs N single-process guest workers behind the kernel's round-robin
    listener fan-out and keeps the whole fleet customized continuously:

    - {!rollout} applies one cut wave-by-wave, with a
      {!Supervisor.guarded_cut} canary gating every wave and the fleet
      manifest journaling each step;
    - {!start_drift}/{!tick} run the coverage-drift closed loop: live
      windowed drcov sampling, automatic fleet-wide re-enable on a trap
      storm, automatic re-cut after a cold-coverage hysteresis;
    - {!recover} replays a controller crash mid-rollout back to a
      uniform fleet — completed waves cut, the interrupted wave
      original.

    Build the workers with [Workload.spawn_fleet], which boots N
    processes of one app on a single machine. *)

type t

exception Fleet_error of string

val manifest_dir : string
(** Machine-fs directory holding the fleet manifest ([/tmpfs/fleet]). *)

val create :
  ?balancer:Balancer.config ->
  Machine.t ->
  port:int ->
  pids:int list ->
  blocks:Covgraph.block list ->
  policy:Dynacut.policy ->
  t
(** Assemble a fleet over already-booted workers. Every pid must be the
    root of its own process tree and own a listener on [port]; each gets
    its own {!Dynacut.session} (and crash journal). [?balancer] tunes
    the dispatcher's accept-queue bound and shed watermarks
    ({!Balancer.default_config} otherwise). Raises {!Fleet_error} (or
    {!Balancer.Balancer_error}) otherwise. *)

val workers : t -> Rollout.worker list
val worker : t -> pid:int -> Rollout.worker
val balancer : t -> Balancer.t
val manifest : t -> Journal.Manifest.t

val request :
  ?max_cycles:int ->
  ?deadline_cycles:int64 ->
  t ->
  string ->
  [ `Reply of int * string | `Refused | `Shed | `Timed_out of int ]
(** One closed-loop request through the health-scored balancer: the
    reply plus the pid that served it, [`Refused] when no worker is
    eligible, [`Shed] when admission control rejects it over-capacity,
    or [`Timed_out pid] when [?deadline_cycles] passed first. *)

val overload : t -> Loadgen.config -> text:string -> Loadgen.stats
(** Saturate the fleet with the deterministic open-loop generator
    ({!Loadgen.run}): Poisson arrivals, deadlines, budgeted retries. *)

val rollout :
  ?config:Rollout.config ->
  t ->
  drive:(unit -> unit) ->
  unit ->
  Rollout.outcome * Rollout.wave_report list
(** Rolling rollout of the fleet's cut; see {!Rollout.run}. [drive]
    advances machine + traffic for the canary observation windows. *)

val start_drift : ?config:Drift.config -> t -> collector:Collector.t -> unit -> unit
(** Start the drift monitor. [collector] must trace every worker
    ([Workload.spawn_fleet ~traced:true] arranges that). *)

val tick : t -> Drift.action option
(** One control-loop step (drift sampling + decisions); call between
    traffic slices. [None] before {!start_drift}. *)

val drift_monitor : t -> Drift.t
(** Raises {!Fleet_error} before {!start_drift}. *)

val refresh_gauges : t -> unit
(** Refresh the [fleet.workers{state=…}] gauge family. *)

(** {2 Fleet-wide crash recovery} *)

type recovery = {
  fr_workers : (int * Dynacut.recovery_action) list;
      (** per-worker [Dynacut.recover] results, in pid order *)
  fr_unwound : int list;
      (** open-wave members whose committed cut was reverted back to
          pristine so the halted wave is uniform *)
  fr_wave : int;  (** the wave the crash interrupted; 0 when none *)
  fr_torn : bool;  (** the manifest's tail was torn *)
}

val pp_recovery : Format.formatter -> recovery -> unit

val recover : Machine.t -> pids:int list -> recovery
(** Recover a fleet after a controller death: per-worker journal replay
    first (per-pid "applied XOR unchanged"), then the manifest — a wave
    that began but never finished is unwound (its committed members
    reverted from pristine images) and recorded as halted, so the fleet
    converges to completed-waves-cut / interrupted-wave-original and a
    second pass is a no-op. *)
