(** Slicing experiment driver: profile a server under the dataflow
    slicing tracer ({!Slicer}), compute the [Sliced_away] cut-candidate
    class ({!Tracediff.sliced_away}), then cut it under the
    supervisor's [`Verify] trap policy and converge by verifier
    feedback — every false positive (a sliced-away block that trapped
    post-cut) re-joins the slice as a counterexample.

    The class is sharper than the coverage diff: anchors are scoped to
    the wanted feature's *success* outputs, so blocks that run under
    wanted requests without contributing to any wanted output (the 404
    arm serving [/missing.html], rkv's [$-1] miss arm) become
    candidates the coverage diff can never find — by construction the
    two classes are disjoint (coverage-diff candidates are outside the
    wanted coverage; sliced-away candidates are inside it). *)

(* ---------- per-app anchor predicates and request mixes ---------- *)

let starts_with ~(prefix : string) (s : string) =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(** Which socket-write payloads count as wanted-feature outputs. Web
    servers: 200 replies (success path of the read-only feature). rkv:
    bulk-string hits — but not the [$-1] miss reply. *)
let wanted_out_of (app : Workload.app) : string -> bool =
  if app.Workload.a_name = "rkv" then fun p ->
    starts_with ~prefix:"$" p && not (starts_with ~prefix:"$-1" p)
  else fun p -> starts_with ~prefix:"HTTP/1.0 200" p

(** The profiling mix: the full wanted traffic, including the requests
    that exercise miss/error arms — those arms land in the coverage but
    outside every success-output slice. *)
let profile_requests (app : Workload.app) : string list =
  if app.Workload.a_name = "rkv" then Workload.kv_wanted
  else Workload.web_wanted

(** The post-cut drive: success requests only (the feature the cut must
    preserve). *)
let drive_requests (app : Workload.app) : string list =
  if app.Workload.a_name = "rkv" then [ "GET greeting\n"; "GET color\n" ]
  else [ Workload.http_get "/index.html"; Workload.http_get "/about.txt" ]

(** One request that reaches an arm still cut after converging on
    {!drive_requests} (used to demonstrate the verifier counterexample
    loop), paired with the reply prefix the restored arm must serve.
    The post-cut drive is success-GETs only, so the other verbs' arms
    stay cut: probing one traps, the [`Verify] handler restores the
    block in place, and the reply still comes back intact. *)
let probe_request (app : Workload.app) : string * string =
  if app.Workload.a_name = "rkv" then ("SET color blue\n", "+OK")
  else (Workload.http_head "/index.html", "HTTP/1.0 200")

(* ---------- phase 1: profile ---------- *)

type profile = {
  p_app : string;
  p_report : Tracediff.slice_report;
  p_blocks : Covgraph.block list;  (** own-module sliced-away candidates *)
  p_points : (string * int * int) list;  (** the slice, as the tracer emits it *)
  p_stats : Slicer.stats;
  p_serving : Drcov.log;  (** serving-phase coverage (for re-use) *)
  p_slicer : Slicer.t;
      (** the detached tracer — still readable, and the sink for
          verifier counterexamples ({!Slicer.add_counterexample}) *)
}

(** Boot [app] traced, wait for the ready banner, then attach the
    slicer for the serving phase only (initialization is not traced —
    its blocks are the init-diff's business) and drive the profiling
    mix. Returns the sliced-away report over the serving coverage.
    [sample] forwards the slicer's sampled-tracing mode. *)
let profile ?(seed = 42) ?sample (app : Workload.app) : profile =
  let c = Workload.spawn ~seed ~traced:true app in
  Workload.wait_ready c;
  let (_ : Drcov.log) = Collector.nudge (Workload.collector c) in
  let sl =
    Slicer.attach c.Workload.m ~pid:c.Workload.pid ?sample
      ~wanted_out:(wanted_out_of app) ()
  in
  Obs.with_span "slice.trace" (fun () ->
      List.iter
        (fun r -> ignore (Workload.rpc c r))
        (profile_requests app);
      (* let the tree settle so block-end bookkeeping closes out *)
      ignore (Machine.run c.Workload.m ~max_cycles:200_000));
  Slicer.detach sl;
  let serving = Collector.detach (Workload.collector c) in
  let points = Slicer.slice sl in
  let report =
    Tracediff.sliced_away
      ~cfg_of:(Common.cfg_provider c.Workload.m.Machine.fs)
      ~covered:[ serving ] ~in_slice:points ()
  in
  let own = Common.own_blocks app.Workload.a_name report.Tracediff.sliced in
  Obs.add (Obs.counter "slice.blocks_removed") (List.length own);
  {
    p_app = app.Workload.a_name;
    p_report = report;
    p_blocks = own;
    p_points = points;
    p_stats = Slicer.stats sl;
    p_serving = serving;
    p_slicer = sl;
  }

(** The classic coverage-diff candidates for the same app (undesired
    minus wanted traffic), and their overlap with [sliced] — zero by
    construction, asserted by the bench: every sliced-away block is a
    cut the coverage diff could not have made. *)
let coverage_diff_overlap (app : Workload.app)
    (sliced : Covgraph.block list) : int * int =
  let undesired_reqs =
    if app.Workload.a_name = "rkv" then Workload.kv_undesired
    else Workload.web_undesired
  in
  let cfg_of = Common.cfg_of_app app in
  let _, wanted =
    Workload.trace_requests ~app ~requests:(profile_requests app)
      ~nudge_at_ready:true ()
  in
  let _, undesired =
    Workload.trace_requests ~app ~requests:undesired_reqs
      ~nudge_at_ready:true ()
  in
  let classic =
    (Tracediff.feature_blocks ~cfg_of ~wanted:[ wanted ]
       ~undesired:[ undesired ] ())
      .Tracediff.undesired
  in
  let overlap = List.filter (fun b -> List.mem b classic) sliced in
  (List.length classic, List.length overlap)

(* ---------- phase 2: cut + verifier convergence ---------- *)

type converge = {
  v_ctx : Workload.ctx;  (** the live, cut server *)
  v_sup : Supervisor.t;
  v_rollout : Supervisor.rollout;
  v_attempted : int;  (** candidate blocks the first cut carried *)
  v_kept : Covgraph.block list;  (** blocks still cut after convergence *)
  v_restored : Covgraph.block list;  (** verifier-evicted false positives *)
  v_rounds : int;  (** drive+feedback rounds until quiescent *)
}

(** Cut [blocks] on a fresh instance of [app] under the [`Verify]
    policy and iterate drive → {!Supervisor.verifier_feedback} until no
    new false positives appear: blocks the wanted feature does touch
    trap once, get restored in place by the guest handler, and are
    evicted from the cut — each eviction is reported through
    [on_counterexample] so the caller can feed it back into the slicer
    ({!Slicer.add_counterexample}). The trap budget is effectively
    unbounded during convergence; the breaker guards the steady state
    afterwards. *)
let cut_and_converge ?(seed = 42) ?(max_rounds = 6)
    ?(on_counterexample = fun (_ : Covgraph.block) -> ())
    (app : Workload.app) ~(blocks : Covgraph.block list) () : converge =
  let c = Workload.spawn ~seed app in
  Workload.wait_ready c;
  let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  let sup =
    Supervisor.create session
      ~config:
        {
          Supervisor.default_config with
          Supervisor.max_traps = 100_000;
          canary_windows = 1;
        }
      ~blocks
      ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Verify }
  in
  let drive () =
    List.iter (fun r -> ignore (Workload.rpc c r)) (drive_requests app)
  in
  let rollout = Supervisor.guarded_cut sup ~canary:true ~drive () in
  let restored = ref [] in
  let rounds = ref 0 in
  (match rollout with
  | Supervisor.R_promoted ->
      let quiescent = ref false in
      while (not !quiescent) && !rounds < max_rounds do
        incr rounds;
        drive ();
        let before = Supervisor.blocks sup in
        let n = Supervisor.verifier_feedback sup in
        if n = 0 then quiescent := true
        else begin
          let after = Supervisor.blocks sup in
          let dropped =
            List.filter (fun b -> not (List.mem b after)) before
          in
          List.iter
            (fun b ->
              restored := b :: !restored;
              on_counterexample b)
            dropped
        end
      done
  | _ -> ());
  {
    v_ctx = c;
    v_sup = sup;
    v_rollout = rollout;
    v_attempted = List.length blocks;
    v_kept = Supervisor.blocks sup;
    v_restored = List.rev !restored;
    v_rounds = !rounds;
  }

let pp_converge fmt (v : converge) =
  Format.fprintf fmt
    "cut %d sliced-away candidates: %a; %d kept, %d restored by the \
     verifier over %d rounds@."
    v.v_attempted Supervisor.pp_rollout v.v_rollout (List.length v.v_kept)
    (List.length v.v_restored) v.v_rounds
