(** Figure 6: DynaCut's overhead for dynamically customizing code
    features — the checkpoint / disable-with-int3 / insert-sighandler /
    restore breakdown for Lighttpd, Nginx (two processes), and the
    Redis stand-in, averaged over 10 repetitions with the standard
    deviation (§4.1 reports σ = 17 ms on real hardware).

    Features disabled: PUT + DELETE for the web servers, SET for rkv —
    the same choices as the paper. *)

type row = {
  f6_app : string;
  f6_image_sizes : int list;  (** one per process *)
  f6_checkpoint : float * float;  (** mean, stddev (seconds) *)
  f6_disable : float * float;
  f6_handler : float * float;
  f6_restore : float * float;
  f6_total_mean : float;
  f6_nblocks : int;
}

let repetitions = 10

let measure ~(app : Workload.app) ~(blocks : Covgraph.block list)
    ~(redirect : string) : row =
  (* the per-stage times are read back from the observability registry's
     span host axis (one observation per stage per repetition), not from
     the timings struct — this figure is the registry's first consumer *)
  Obs.reset ();
  let samples =
    List.init repetitions (fun rep ->
        let c = Workload.spawn ~seed:(100 + rep) app in
        Workload.wait_ready c;
        let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
        let _journals, _t =
          Dynacut.cut session ~blocks
            ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Redirect redirect }
        in
        (c, session))
  in
  let stat span =
    let vs = Obs.span_seconds span in
    assert (List.length vs = repetitions);
    (Stats.mean vs, Stats.stddev vs)
  in
  (* image sizes from one representative checkpoint *)
  let c0, s0 = List.hd samples in
  let sizes =
    List.map
      (fun pid ->
        Images.image_size
          (Validate.decode_sealed
             (Option.get (Vfs.find c0.Workload.m.Machine.fs (Printf.sprintf "%s/dump-%d.img" s0.Dynacut.tmpfs pid)))))
      (Dynacut.tree_pids s0)
  in
  let checkpoint = stat "checkpoint" in
  let disable = stat "rewrite" in
  let handler = stat "inject" in
  let restore = stat "restore" in
  {
    f6_app = app.Workload.a_name;
    f6_image_sizes = sizes;
    f6_checkpoint = checkpoint;
    f6_disable = disable;
    f6_handler = handler;
    f6_restore = restore;
    f6_total_mean =
      fst checkpoint +. fst disable +. fst handler +. fst restore;
    f6_nblocks = List.length blocks;
  }

let run fmt =
  Common.section fmt
    "Figure 6: overhead of dynamic feature customization (mean of 10 runs)";
  let ltpd =
    measure ~app:Workload.ltpd
      ~blocks:(Common.web_feature_blocks Workload.ltpd)
      ~redirect:"ltpd_403"
  in
  let ngx =
    measure ~app:Workload.ngx
      ~blocks:(Common.web_feature_blocks Workload.ngx)
      ~redirect:"ngx_declined"
  in
  let rkv =
    measure ~app:Workload.rkv
      ~blocks:(Common.rkv_feature_blocks Workload.kv_undesired)
      ~redirect:"rkv_err"
  in
  let rows = [ ltpd; ngx; rkv ] in
  let table =
    List.map
      (fun r ->
        let m (a, _) = Printf.sprintf "%.4f" a in
        let sd (_, b) = Printf.sprintf "%.4f" b in
        [
          r.f6_app;
          String.concat "+" (List.map Table.human_bytes r.f6_image_sizes);
          string_of_int r.f6_nblocks;
          m r.f6_checkpoint;
          m r.f6_disable;
          m r.f6_handler;
          m r.f6_restore;
          Printf.sprintf "%.4f" r.f6_total_mean;
          sd r.f6_checkpoint;
        ])
      rows
  in
  Format.fprintf fmt "%s@."
    (Table.render
       ~headers:
         [
           "app"; "image(s)"; "blocks"; "checkpoint"; "int3"; "sighandler";
           "restore"; "total(s)"; "σ(ckpt)";
         ]
       table);
  Format.fprintf fmt "@.%s@."
    (Table.stacked_bars ~unit:"s"
       ~segments:[ "checkpoint"; "disable w/ int3"; "insert sighandler"; "restore" ]
       (List.map
          (fun r ->
            ( r.f6_app,
              [
                fst r.f6_checkpoint; fst r.f6_disable; fst r.f6_handler; fst r.f6_restore;
              ] ))
          rows));
  rows
