(** Figure 8: Redis-server throughput under DynaCut, on the virtual
    clock. A closed-loop client floods GET requests; at t≈18 s DynaCut
    rewrites the process to disable the SET command, at t≈48 s it
    re-enables it; a vanilla run is the baseline.

    Time model: 1 "second" = 1M virtual cycles. While the target is
    frozen, the service interruption is charged to the virtual clock as
    [interrupt_cycles = 300k + image_bytes/2] — calibrated so a
    rkv-sized image costs the ≈0.4–1 s the paper measures (§4.1). The
    rewrite work itself is real (the same checkpoint → patch → restore
    pipeline as Figure 6); only its *duration on the guest clock* is
    modeled, since host CPU time has no meaning for the virtual clock. *)

let cycles_per_second = 1_000_000
let total_seconds = 70
let disable_at = 18
let reenable_at = 48

let interrupt_cycles ~image_bytes = 300_000 + (image_bytes / 2)

type run = {
  f8_throughput : float array;  (** replies per virtual second *)
  f8_interruption_s : float;  (** modeled interruption, seconds *)
  f8_label : string;
}

let closed_loop_run ~(dynacut : bool) : run =
  let blocks = if dynacut then Common.rkv_feature_blocks Workload.kv_undesired else [] in
  (* fresh registry per run: the vanilla and DynaCut curves use the same
     counter names, and stale handles must not leak across runs *)
  Obs.reset ();
  let c = Workload.spawn Workload.rkv in
  Workload.wait_ready c;
  let m = c.Workload.m in
  let session = if dynacut then Some (Dynacut.create m ~root_pid:c.Workload.pid) else None in
  (* replies are counted in the observability registry (one labeled
     counter per virtual second) instead of a private array; the
     throughput curve is read back from it once the run ends *)
  let reply_counter s =
    Obs.counter ~labels:[ ("s", string_of_int s) ] "fig8.replies"
  in
  let journals = ref [] in
  let interruption = ref 0 in
  (* closed-loop client state *)
  let outstanding : Net.conn option ref = ref None in
  let t0 = m.Machine.clock in
  let now_s () = Int64.to_int (Int64.sub m.Machine.clock t0) / cycles_per_second in
  let pump () =
    (match !outstanding with
    | None ->
        let conn = Net.connect m.Machine.net Rkv.port in
        Net.client_send conn "GET greeting\n";
        outstanding := Some conn
    | Some conn ->
        if Net.client_pending conn > 0 then begin
          let (_ : string) = Net.client_recv conn in
          Net.client_close conn;
          let s = now_s () in
          if s < total_seconds then Obs.incr (reply_counter s);
          outstanding := None
        end);
    ignore (Machine.run m ~max_cycles:5_000)
  in
  let apply_cut () =
    match session with
    | None -> ()
    | Some session ->
        let js, _t =
          Dynacut.cut session ~blocks
            ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Redirect "rkv_err" }
        in
        journals := js;
        let image_bytes =
          List.fold_left
            (fun acc pid ->
              acc
              + String.length
                  (Option.get
                     (Vfs.find m.Machine.fs
                        (Printf.sprintf "%s/dump-%d.img" session.Dynacut.tmpfs pid))))
            0 (Dynacut.tree_pids session)
        in
        let dc = interrupt_cycles ~image_bytes in
        interruption := dc;
        m.Machine.clock <- Int64.add m.Machine.clock (Int64.of_int dc)
  in
  let apply_reenable () =
    match session with
    | None -> ()
    | Some session ->
        let (_ : Dynacut.timings) = Dynacut.reenable session !journals in
        m.Machine.clock <- Int64.add m.Machine.clock (Int64.of_int !interruption)
  in
  let cut_done = ref false and reenable_done = ref false in
  while now_s () < total_seconds do
    if dynacut && (not !cut_done) && now_s () >= disable_at then begin
      apply_cut ();
      cut_done := true
    end;
    if dynacut && (not !reenable_done) && now_s () >= reenable_at then begin
      apply_reenable ();
      reenable_done := true
    end;
    pump ()
  done;
  (* sanity of the final state *)
  if dynacut then begin
    let r = Workload.rpc c "SET probe val\n" in
    if r <> "+OK" then failwith ("fig8: SET not re-enabled: " ^ r)
  end;
  {
    f8_throughput =
      Array.init total_seconds (fun s ->
          float_of_int (Obs.counter_value (reply_counter s)));
    f8_interruption_s = float_of_int !interruption /. float_of_int cycles_per_second;
    f8_label = (if dynacut then "w/ DynaCut" else "w/o DynaCut");
  }

let run fmt =
  Common.section fmt
    "Figure 8: rkv throughput while disabling/re-enabling the SET command";
  let vanilla = closed_loop_run ~dynacut:false in
  let dc = closed_loop_run ~dynacut:true in
  Format.fprintf fmt
    "closed-loop GET client; disable SET at t=%ds, re-enable at t=%ds; modeled@.\
     interruption %.2f virtual seconds per rewrite@.@."
    disable_at reenable_at dc.f8_interruption_s;
  Format.fprintf fmt "%s@."
    (Table.timeseries ~ylabel:"time (virtual s)"
       [ (dc.f8_label, dc.f8_throughput); (vanilla.f8_label, vanilla.f8_throughput) ]);
  let mean a lo hi =
    let xs = ref [] in
    Array.iteri (fun i x -> if i >= lo && i < hi then xs := x :: !xs) a;
    Stats.mean !xs
  in
  Format.fprintf fmt
    "mean throughput (req/s): vanilla %.0f | DynaCut before cut %.0f, during@.\
     disabled window %.0f, after re-enable %.0f@."
    (mean vanilla.f8_throughput 2 total_seconds)
    (mean dc.f8_throughput 2 disable_at)
    (mean dc.f8_throughput (disable_at + 2) reenable_at)
    (mean dc.f8_throughput (reenable_at + 2) total_seconds);
  (vanilla, dc)
