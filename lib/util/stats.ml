(** Mean / standard deviation / percentile helpers for the bench harness. *)

let mean xs =
  match xs with
  | [] -> 0.
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
      let m = mean xs in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs
        /. float_of_int (List.length xs - 1)
      in
      sqrt var

(* Sorted-array nearest-rank with linear interpolation (the "type 7"
   estimator); one sort then O(1) per lookup — the old List.nth walk was
   O(n²) across the repeated p50/p90/p99 calls the figures make. The
   single percentile definition lives in [Obs.percentile_sorted]. *)
let percentile p xs = Obs.percentile_list p xs

(** Time a thunk with [Unix]-free monotonic-ish clock ([Sys.time] measures
    processor time, which is what the rewrite-cost figures need). *)
let time_it f =
  let t0 = Sys.time () in
  let r = f () in
  let t1 = Sys.time () in
  (r, t1 -. t0)

let time_n n f =
  List.init n (fun _ ->
      let _, dt = time_it f in
      dt)
