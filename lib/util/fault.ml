(** Deterministic named-site fault injection.

    Every failure-prone operation in the cut pipeline declares a named
    site ([Fault.site "criu.save"]); a test (or the CLI's
    [--inject-fault]) arms a site with a schedule and the next matching
    hit fires there. Scheduling is driven by {!Rng}, so a chaos run with
    a fixed seed replays bit-for-bit.

    Beyond the original fail/kill faults, a site can be armed in one of
    the {!mode}s of the chaos engine (DESIGN.md §6c): [Delay n] charges
    [n] virtual cycles to the machine clock and lets the operation
    proceed (gray failure / straggler simulation), [Corrupt] mangles the
    sealed blob a storage site is about to write (seeded bit-flip or
    truncation, caught downstream by {!Validate}'s checksum), and
    [Enospc]/[Eio] raise a typed {!Storage_error} that the transaction
    engine turns into a clean refusal.

    Sites are global (the pipeline is single-threaded, like the
    machine): [reset] between tests. Rollback paths run under
    {!suppressed} so an armed fault cannot re-fire while the transaction
    is already unwinding. *)

type spec =
  | One_shot  (** fire on the next hit, then disarm *)
  | Every_nth of int  (** fire on every [n]-th hit of the site *)
  | Probability of float  (** fire each hit with probability [p] *)
  | On_nth of int  (** fire exactly on the [n]-th hit, then disarm *)

(** What happens when an armed site fires. *)
type mode =
  | Fail  (** raise {!Injected} — the original single-fault mode *)
  | Kill  (** raise {!Controller_killed}: the controller itself dies *)
  | Delay of int
      (** advance the virtual clock by [n] cycles and continue — a slow
          disk, a GC pause, a straggling worker (gray failure) *)
  | Corrupt
      (** mangle the payload at a storage write site ({!corruptible});
          the operation "succeeds" and the damage surfaces at read time *)
  | Enospc  (** raise {!Storage_error} with [`Enospc] *)
  | Eio  (** raise {!Storage_error} with [`Eio] *)
  | Bitflip
      (** flip one seeded bit in a resident mapped page of the scoped
          worker (any live process when unscoped) and let the operation
          proceed — {e silent} memory corruption, the failure only the
          integrity scrubber can catch. Distinct from [Corrupt], which
          mangles a storage write and is caught by the checksum seal at
          read time. *)

let mode_to_string = function
  | Fail -> "fail"
  | Kill -> "kill"
  | Delay n -> Printf.sprintf "delay=%d" n
  | Corrupt -> "corrupt"
  | Enospc -> "enospc"
  | Eio -> "eio"
  | Bitflip -> "bitflip"

exception Injected of { site : string; transient : bool }
(** [transient] marks the fault as retryable — the transaction retries
    the stage instead of rolling back (capped backoff). *)

exception Controller_killed of { site : string }
(** A [~kill] fault: the dynacut controller itself dies at the site.
    Unlike {!Injected} it is not part of the pipeline's failure domain —
    it unwinds past every rollback handler (including {!suppressed}
    sections), leaving the tree exactly as the crash found it. Recovery
    is [Dynacut.recover]'s job, from the journal alone. *)

exception Storage_error of { site : string; kind : [ `Enospc | `Eio ] }
(** A typed storage failure ([Enospc]/[Eio] modes) at a write site.
    Inside the transaction engine it is part of the failure domain: the
    cut is refused cleanly (rollback / typed error), never a stranded
    half-patched tree. *)

let storage_kind_to_string = function `Enospc -> "enospc" | `Eio -> "eio"

type armed = {
  a_spec : spec;
  a_mode : mode;
  a_transient : bool;
  a_scope : int option;
      (** when set, only [site ~scope:pid] calls with a matching pid
          fire — per-worker faults (e.g. one straggling fleet member) *)
}

type counters = { mutable c_hits : int; mutable c_fired : int }

let rng = ref (Rng.create 7)
let armed_tbl : (string, armed) Hashtbl.t = Hashtbl.create 8
let stats : (string, counters) Hashtbl.t = Hashtbl.create 16
let suppress_depth = ref 0

(* installed by [Machine.create]: advance that machine's virtual clock
   (Fault sits below Machine in the layering, so delay is a callback).
   Like [Obs.set_clock], the last machine created wins, and [reset]
   leaves it alone — the machine outlives the faults armed on it. *)
let delay_hook : (int -> unit) option ref = ref None
let set_delay_hook h = delay_hook := h

(* installed by [Machine.create], like [delay_hook]: flip one seeded bit
   in a resident mapped page of a live process (the armed scope's pid
   when set). The draw comes from Fault's own rng so a seeded chaos run
   replays the flip bit-for-bit. *)
let bitflip_hook : (scope:int option -> Rng.t -> unit) option ref = ref None
let set_bitflip_hook h = bitflip_hook := h

(** Re-seed the fault scheduler (probabilistic specs and corruption
    mangling draw from here). *)
let seed n = rng := Rng.create n

(** Disarm every site and zero all counters. *)
let reset () =
  Hashtbl.reset armed_tbl;
  Hashtbl.reset stats;
  suppress_depth := 0;
  seed 7

let check_spec = function
  | Every_nth n when n <= 0 -> invalid_arg "Fault.arm: Every_nth needs n >= 1"
  | On_nth n when n <= 0 -> invalid_arg "Fault.arm: On_nth needs n >= 1"
  | Probability p when not (p >= 0. && p <= 1.) ->
      invalid_arg "Fault.arm: probability outside [0,1]"
  | _ -> ()

(** Arm [site] to fire in [mode] on [spec]'s schedule, optionally scoped
    to one pid. One armed entry per site (latest wins). *)
let arm_mode ?scope ?(transient = false) site spec (mode : mode) =
  check_spec spec;
  (match mode with
  | Delay n when n <= 0 -> invalid_arg "Fault.arm_mode: Delay needs n >= 1"
  | _ -> ());
  Hashtbl.replace armed_tbl site
    { a_spec = spec; a_mode = mode; a_transient = transient; a_scope = scope }

let arm ?(transient = false) ?(kill = false) site spec =
  arm_mode ~transient site spec (if kill then Kill else Fail)

let disarm site = Hashtbl.remove armed_tbl site
let disarm_all () = Hashtbl.reset armed_tbl
let armed site = Hashtbl.mem armed_tbl site
let armed_mode site = Option.map (fun a -> a.a_mode) (Hashtbl.find_opt armed_tbl site)

let counters_for site =
  match Hashtbl.find_opt stats site with
  | Some c -> c
  | None ->
      let c = { c_hits = 0; c_fired = 0 } in
      Hashtbl.add stats site c;
      c

(** How many times the site was reached / actually fired. *)
let hits site = match Hashtbl.find_opt stats site with Some c -> c.c_hits | None -> 0
let fired site = match Hashtbl.find_opt stats site with Some c -> c.c_fired | None -> 0

(** Every site seen or armed so far, sorted. *)
let sites () =
  let acc = Hashtbl.create 16 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace acc k ()) stats;
  Hashtbl.iter (fun k _ -> Hashtbl.replace acc k ()) armed_tbl;
  List.sort compare (Hashtbl.fold (fun k () l -> k :: l) acc [])

(** Run [f] with all armed faults masked — the rollback path must not
    trip over the fault that triggered the rollback. Hit counters still
    advance. *)
let suppressed f =
  incr suppress_depth;
  Fun.protect ~finally:(fun () -> decr suppress_depth) f

let scope_matches (a : armed) (scope : int option) =
  match (a.a_scope, scope) with
  | None, _ -> true
  | Some s, Some k -> s = k
  | Some _, None -> false

let should_fire (c : counters) (a : armed) =
  match a.a_spec with
  | One_shot -> true
  | Every_nth n -> c.c_hits mod n = 0
  | On_nth n -> c.c_hits = n
  | Probability p -> Rng.float !rng < p

(* common firing bookkeeping: one-shot specs disarm, counters + registry
   advance, the event ring records the firing *)
let record_fire name (c : counters) (a : armed) =
  (match a.a_spec with
  | One_shot | On_nth _ -> Hashtbl.remove armed_tbl name
  | Every_nth _ | Probability _ -> ());
  c.c_fired <- c.c_fired + 1;
  Obs.incr (Obs.counter ~labels:[ ("site", name) ] "fault.fired");
  Obs.event ~kind:"fault"
    (Printf.sprintf "%s fired=%d %s%s" name c.c_fired (mode_to_string a.a_mode)
       (if a.a_transient then " transient" else ""))

(** Declare a fault site. No-op unless the site is armed. A [Kill]
    fault ignores {!suppressed} — controller death strikes anywhere,
    including inside a rollback. A [Corrupt] fault never fires here: it
    applies at the site's {!corruptible} write, with the hit counter
    this call advanced. [?scope] names the pid the operation acts for;
    a fault armed with a scope only fires on a matching call. *)
let site ?scope name =
  let c = counters_for name in
  c.c_hits <- c.c_hits + 1;
  match Hashtbl.find_opt armed_tbl name with
  | None -> ()
  | Some a when not (scope_matches a scope) -> ()
  | Some a when a.a_mode = Corrupt -> ()
  | Some a when a.a_mode <> Kill && !suppress_depth > 0 -> ()
  | Some a ->
      if should_fire c a then begin
        record_fire name c a;
        match a.a_mode with
        | Fail -> raise (Injected { site = name; transient = a.a_transient })
        | Kill -> raise (Controller_killed { site = name })
        | Delay n -> ( match !delay_hook with Some h -> h n | None -> ())
        | Bitflip -> (
            (* silent: the operation proceeds, the damage is resident *)
            match !bitflip_hook with
            | Some h -> h ~scope:a.a_scope !rng
            | None -> ())
        | Enospc -> raise (Storage_error { site = name; kind = `Enospc })
        | Eio -> raise (Storage_error { site = name; kind = `Eio })
        | Corrupt -> assert false
      end

(* seeded damage: either a torn write (truncate, possibly to nothing)
   or 1-3 single-bit flips. Both are exactly what the checksum seal is
   there to catch. *)
let mangle (s : string) : string =
  let n = String.length s in
  if n = 0 then s
  else if Rng.bool !rng then String.sub s 0 (Rng.int !rng n)
  else begin
    let b = Bytes.of_string s in
    let flips = 1 + Rng.int !rng 3 in
    for _ = 1 to flips do
      let i = Rng.int !rng n in
      Bytes.set b i
        (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Rng.int !rng 8)))
    done;
    Bytes.to_string b
  end

(** Pass a storage payload through the site's corruption point, just
    before it is written. Identity unless a [Corrupt]-mode fault fires
    here. Does not advance the hit counter — the site's {!site} call,
    which every storage write site makes first, already did. *)
let corruptible ?scope name (payload : string) : string =
  match Hashtbl.find_opt armed_tbl name with
  | Some ({ a_mode = Corrupt; _ } as a)
    when scope_matches a scope && !suppress_depth = 0 ->
      let c = counters_for name in
      if should_fire c a then begin
        record_fire name c a;
        mangle payload
      end
      else payload
  | _ -> payload

(** Parse a CLI fault argument:
    [SITE[:once|nth=N|on=N|p=F][:MODE][:transient][:pid=P]] where MODE
    is [kill], [delay=N], [corrupt], [enospc], [eio] or [bitflip]
    (default: fail),
    e.g. ["criu.save:once"], ["rewrite.patch:nth=3:transient"],
    ["journal.append:once:corrupt"], ["net.serve:nth=2:delay=40000"].
    Returns (site, spec, transient, mode, scope). *)
let parse_spec (s : string) : string * spec * bool * mode * int option =
  let num ~what v =
    match int_of_string_opt v with
    | Some n -> n
    | None -> invalid_arg (Printf.sprintf "Fault.parse_spec: bad %s %S" what v)
  in
  match String.split_on_char ':' s with
  | [] | [ "" ] -> invalid_arg "Fault.parse_spec: empty"
  | site :: opts ->
      let spec = ref One_shot
      and transient = ref false
      and mode = ref Fail
      and scope = ref None in
      let has_prefix p o =
        String.length o > String.length p && String.sub o 0 (String.length p) = p
      in
      let suffix p o = String.sub o (String.length p) (String.length o - String.length p) in
      List.iter
        (fun o ->
          match o with
          | "once" -> spec := One_shot
          | "transient" -> transient := true
          | "kill" -> mode := Kill
          | "corrupt" -> mode := Corrupt
          | "enospc" -> mode := Enospc
          | "eio" -> mode := Eio
          | "bitflip" -> mode := Bitflip
          | _ when has_prefix "nth=" o -> spec := Every_nth (num ~what:"nth" (suffix "nth=" o))
          | _ when has_prefix "on=" o -> spec := On_nth (num ~what:"on" (suffix "on=" o))
          | _ when has_prefix "p=" o -> (
              match float_of_string_opt (suffix "p=" o) with
              | Some p -> spec := Probability p
              | None -> invalid_arg (Printf.sprintf "Fault.parse_spec: bad p %S" o))
          | _ when has_prefix "delay=" o -> mode := Delay (num ~what:"delay" (suffix "delay=" o))
          | _ when has_prefix "pid=" o -> scope := Some (num ~what:"pid" (suffix "pid=" o))
          | _ -> invalid_arg (Printf.sprintf "Fault.parse_spec: bad option %S" o))
        opts;
      (site, !spec, !transient, !mode, !scope)

(** Static registry of every fault site compiled into the pipeline, with
    a one-line description. [sites ()] only knows sites already reached
    at run time; the CLI's [--list-fault-sites] wants them all. Keep in
    sync with the [Fault.site] calls — ci.sh greps lib/ for them, and
    the crash matrix + chaos coverage matrix derive their scenarios from
    this list. *)
let known_sites =
  [
    ("criu.checkpoint", "freeze + dump of one process into images");
    ("criu.save", "serialize and seal an image blob to tmpfs");
    ("criu.load", "load, unseal and validate an image blob from tmpfs");
    ("crit.encode", "image-to-text round trip, encode half");
    ("crit.decode", "image-to-text round trip, decode half");
    ("rewrite.patch", "int3 byte patch on a checkpoint image");
    ("rewrite.unmap", "page drop / VMA split on a checkpoint image");
    ("inject.lib", "map the SIGTRAP handler library into the image");
    ("inject.policy", "write the policy table into the image");
    ("restore.process", "rebuild a live process from images");
    ("restore.tcp_repair", "re-attach a snapshotted TCP connection");
    ("restore.respawn", "supervisor crash-loop respawn from a tmpfs image");
    ("supervisor.promote", "canary promotion to the remaining pids");
    ("supervisor.reenable", "breaker-tripped automatic re-enable");
    ("journal.lock", "acquire or refresh the per-tree journal lock (fencing)");
    ("journal.append", "append a sealed record to the crash-consistency journal");
    ("recover.replay", "apply one recovery action (respawn, pristine restore, thaw)");
    ("fleet.wave", "begin one wave of a rolling fleet rollout");
    ("fleet.manifest", "append a sealed entry to the fleet rollout manifest");
    ("fleet.reenable", "drift monitor's automatic fleet-wide re-enable");
    ("fleet.recut", "drift monitor's automatic re-cut of cold blocks");
    ("balancer.dispatch", "route one client connection to a fleet worker");
    ("balancer.health", "health-score the fleet's workers for one dispatch");
    ("net.accept_queue", "admit a connection onto a bounded accept queue");
    ("net.serve", "a worker accepts one queued connection to serve it");
    ("fleet.shed", "admission control sheds one over-capacity request");
    ("scrub.page", "verify one resident page digest against the integrity baseline");
    ("integrity.repair", "page-level repair of a diverged resident page from sealed images");
    ("slice.trace", "attach the dataflow slicing tracer's per-insn/syscall hooks");
    ("slice.compute", "fold the anchored dependency sets into the final slice");
    ("bbcache.dispatch", "enter the decoded-block code cache's dispatch loop for a quantum");
    ("bbcache.flush", "evict cached blocks overlapping dirtied executable pages");
  ]

(* storage write sites: the only places [Corrupt]/[Enospc]/[Eio] apply —
   every one pairs its [site] call with a [corruptible] write *)
let storage_sites = [ "criu.save"; "journal.lock"; "journal.append"; "fleet.manifest" ]

(* resident-memory sites: operations running against live mapped pages,
   where a silent [Bitflip] can land — a worker serving traffic, and the
   scrubber touching the very page it audits. Both take a [~scope] pid,
   so a flip is per-worker scopable. *)
let resident_sites = [ "net.serve"; "scrub.page" ]

(** The modes that make sense at [site]: fail/kill/delay everywhere
    (every site is an operation that can fail outright, die, or stall),
    plus corrupt/enospc/eio at the storage write sites and bitflip at
    the resident-memory sites. The chaos coverage matrix must exercise
    each site in every applicable mode. *)
let applicable_modes (site : string) : mode list =
  let base = [ Fail; Kill; Delay 25_000 ] in
  let base = if List.mem site storage_sites then base @ [ Corrupt; Enospc; Eio ] else base in
  if List.mem site resident_sites then base @ [ Bitflip ] else base

(** Run-wide per-site fired count as recorded in the metric registry.
    Unlike {!fired} it survives {!reset} (only [Obs.reset] clears it), so
    a multi-phase scenario can report every injection that ever fired. *)
let registry_fired site =
  Obs.counter_value (Obs.counter ~labels:[ ("site", site) ] "fault.fired")

(** One line per known site: "site hits/fired". *)
let report () =
  String.concat "\n"
    (List.map (fun s -> Printf.sprintf "%-20s hits=%d fired=%d" s (hits s) (fired s)) (sites ()))
