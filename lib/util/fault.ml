(** Deterministic named-site fault injection.

    Every failure-prone operation in the cut pipeline declares a named
    site ([Fault.site "criu.save"]); a test (or the CLI's
    [--inject-fault]) arms a site with a schedule and the next matching
    hit raises {!Injected} there. Scheduling is driven by {!Rng}, so a
    chaos run with a fixed seed replays bit-for-bit.

    Sites are global (the pipeline is single-threaded, like the
    machine): [reset] between tests. Rollback paths run under
    {!suppressed} so an armed fault cannot re-fire while the transaction
    is already unwinding. *)

type spec =
  | One_shot  (** fire on the next hit, then disarm *)
  | Every_nth of int  (** fire on every [n]-th hit of the site *)
  | Probability of float  (** fire each hit with probability [p] *)

exception Injected of { site : string; transient : bool }
(** [transient] marks the fault as retryable — the transaction retries
    the stage instead of rolling back (capped backoff). *)

exception Controller_killed of { site : string }
(** A [~kill] fault: the dynacut controller itself dies at the site.
    Unlike {!Injected} it is not part of the pipeline's failure domain —
    it unwinds past every rollback handler (including {!suppressed}
    sections), leaving the tree exactly as the crash found it. Recovery
    is [Dynacut.recover]'s job, from the journal alone. *)

type armed = { a_spec : spec; a_transient : bool; a_kill : bool }
type counters = { mutable c_hits : int; mutable c_fired : int }

let rng = ref (Rng.create 7)
let armed_tbl : (string, armed) Hashtbl.t = Hashtbl.create 8
let stats : (string, counters) Hashtbl.t = Hashtbl.create 16
let suppress_depth = ref 0

(** Re-seed the fault scheduler (probabilistic specs draw from here). *)
let seed n = rng := Rng.create n

(** Disarm every site and zero all counters. *)
let reset () =
  Hashtbl.reset armed_tbl;
  Hashtbl.reset stats;
  suppress_depth := 0;
  seed 7

let arm ?(transient = false) ?(kill = false) site spec =
  (match spec with
  | Every_nth n when n <= 0 -> invalid_arg "Fault.arm: Every_nth needs n >= 1"
  | Probability p when not (p >= 0. && p <= 1.) ->
      invalid_arg "Fault.arm: probability outside [0,1]"
  | _ -> ());
  Hashtbl.replace armed_tbl site { a_spec = spec; a_transient = transient; a_kill = kill }

let disarm site = Hashtbl.remove armed_tbl site
let armed site = Hashtbl.mem armed_tbl site

let counters_for site =
  match Hashtbl.find_opt stats site with
  | Some c -> c
  | None ->
      let c = { c_hits = 0; c_fired = 0 } in
      Hashtbl.add stats site c;
      c

(** How many times the site was reached / actually fired. *)
let hits site = match Hashtbl.find_opt stats site with Some c -> c.c_hits | None -> 0
let fired site = match Hashtbl.find_opt stats site with Some c -> c.c_fired | None -> 0

(** Every site seen or armed so far, sorted. *)
let sites () =
  let acc = Hashtbl.create 16 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace acc k ()) stats;
  Hashtbl.iter (fun k _ -> Hashtbl.replace acc k ()) armed_tbl;
  List.sort compare (Hashtbl.fold (fun k () l -> k :: l) acc [])

(** Run [f] with all armed faults masked — the rollback path must not
    trip over the fault that triggered the rollback. Hit counters still
    advance. *)
let suppressed f =
  incr suppress_depth;
  Fun.protect ~finally:(fun () -> decr suppress_depth) f

(** Declare a fault site. No-op unless the site is armed. A [~kill]
    fault ignores {!suppressed} — controller death strikes anywhere,
    including inside a rollback. *)
let site name =
  let c = counters_for name in
  c.c_hits <- c.c_hits + 1;
  match Hashtbl.find_opt armed_tbl name with
  | None -> ()
  | Some a when (not a.a_kill) && !suppress_depth > 0 -> ()
  | Some a ->
      let fire =
        match a.a_spec with
        | One_shot -> true
        | Every_nth n -> c.c_hits mod n = 0
        | Probability p -> Rng.float !rng < p
      in
      if fire then begin
        (match a.a_spec with
        | One_shot -> Hashtbl.remove armed_tbl name
        | Every_nth _ | Probability _ -> ());
        c.c_fired <- c.c_fired + 1;
        Obs.incr (Obs.counter ~labels:[ ("site", name) ] "fault.fired");
        Obs.event ~kind:"fault"
          (Printf.sprintf "%s fired=%d%s" name c.c_fired
             (if a.a_kill then " kill" else if a.a_transient then " transient" else ""));
        if a.a_kill then raise (Controller_killed { site = name })
        else raise (Injected { site = name; transient = a.a_transient })
      end

(** Parse a CLI fault argument: [SITE[:once|nth=N|p=F][:transient][:kill]],
    e.g. ["criu.save:once"], ["rewrite.patch:nth=3:transient"],
    ["restore.process:kill"]. Returns (site, spec, transient, kill). *)
let parse_spec (s : string) : string * spec * bool * bool =
  match String.split_on_char ':' s with
  | [] | [ "" ] -> invalid_arg "Fault.parse_spec: empty"
  | site :: opts ->
      let spec = ref One_shot and transient = ref false and kill = ref false in
      List.iter
        (fun o ->
          match o with
          | "once" -> spec := One_shot
          | "transient" -> transient := true
          | "kill" -> kill := true
          | _ when String.length o > 4 && String.sub o 0 4 = "nth=" ->
              spec := Every_nth (int_of_string (String.sub o 4 (String.length o - 4)))
          | _ when String.length o > 2 && String.sub o 0 2 = "p=" ->
              spec := Probability (float_of_string (String.sub o 2 (String.length o - 2)))
          | _ -> invalid_arg (Printf.sprintf "Fault.parse_spec: bad option %S" o))
        opts;
      (site, !spec, !transient, !kill)

(** Static registry of every fault site compiled into the pipeline, with
    a one-line description. [sites ()] only knows sites already reached
    at run time; the CLI's [--list-fault-sites] wants them all. Keep in
    sync with the [Fault.site] calls — test_faults checks completeness
    against the sites the test suites actually reach. *)
let known_sites =
  [
    ("criu.checkpoint", "freeze + dump of one process into images");
    ("criu.save", "serialize and seal an image blob to tmpfs");
    ("criu.load", "load, unseal and validate an image blob from tmpfs");
    ("crit.encode", "image-to-text round trip, encode half");
    ("crit.decode", "image-to-text round trip, decode half");
    ("rewrite.patch", "int3 byte patch on a checkpoint image");
    ("rewrite.unmap", "page drop / VMA split on a checkpoint image");
    ("inject.lib", "map the SIGTRAP handler library into the image");
    ("inject.policy", "write the policy table into the image");
    ("restore.process", "rebuild a live process from images");
    ("restore.tcp_repair", "re-attach a snapshotted TCP connection");
    ("restore.respawn", "supervisor crash-loop respawn from a tmpfs image");
    ("supervisor.promote", "canary promotion to the remaining pids");
    ("supervisor.reenable", "breaker-tripped automatic re-enable");
    ("journal.lock", "acquire or refresh the per-tree journal lock (fencing)");
    ("journal.append", "append a sealed record to the crash-consistency journal");
    ("recover.replay", "apply one recovery action (respawn, pristine restore, thaw)");
    ("fleet.wave", "begin one wave of a rolling fleet rollout");
    ("fleet.reenable", "drift monitor's automatic fleet-wide re-enable");
    ("fleet.recut", "drift monitor's automatic re-cut of cold blocks");
    ("balancer.dispatch", "route one client connection to a fleet worker");
    ("balancer.health", "health-score the fleet's workers for one dispatch");
    ("net.accept_queue", "admit a connection onto a bounded accept queue");
    ("fleet.shed", "admission control sheds one over-capacity request");
  ]

(** Run-wide per-site fired count as recorded in the metric registry.
    Unlike {!fired} it survives {!reset} (only [Obs.reset] clears it), so
    a multi-phase scenario can report every injection that ever fired. *)
let registry_fired site =
  Obs.counter_value (Obs.counter ~labels:[ ("site", site) ] "fault.fired")

(** One line per known site: "site hits/fired". *)
let report () =
  String.concat "\n"
    (List.map (fun s -> Printf.sprintf "%-20s hits=%d fired=%d" s (hits s) (fired s)) (sites ()))
